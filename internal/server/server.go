// Package server exposes a streaming similarity self-join over TCP, so
// that producers in other processes (or machines) can feed one shared
// stream and receive matches online — the deployment shape of the
// paper's motivating applications, where posts arrive from a frontend
// and near-duplicate/trend signals flow back.
//
// # Protocol
//
// Line-oriented, UTF-8. Client → server:
//
//	ADD <timestamp> <dim>:<val> <dim>:<val> ...
//	ADDNOW <dim>:<val> ...        (server assigns the arrival timestamp)
//	SIDE <A|B>                    (foreign join: side of subsequent ADDs)
//	WM <timestamp>                (event-time heartbeat; bounded-lateness servers)
//	PUT <id> <A|B> <timestamp> <dim>:<val> ...   (cluster ingest; see below)
//	ADV <timestamp>               (engine time barrier; cluster watermark fan-out)
//	STATS                         (operation counters, text form)
//	STATS JSON                    (operation counters as one JSON line)
//	SIZE                          (index occupancy)
//	PING
//	QUIT
//
// Server → client, in response to ADD/ADDNOW:
//
//	MATCH <x> <y> <sim> <dot> <dt>   (zero or more)
//	OK <id>                          (the item's assigned stream ID)
//
// or "ERR <message>" for rejected input. Items from all connections are
// interleaved into a single self-join stream: a match can pair items
// submitted by different clients.
//
// A server started with Config.Foreign runs the two-stream foreign join
// A ⋈ B instead: each connection carries a current side (side A until
// it issues SIDE), every ADD/ADDNOW ingests on that side, and matches
// pair only cross-side items. SIDE answers "SIDE <A|B>" (echo) and is
// rejected on a self-join server, where the tag would be silently
// meaningless.
//
// # Ingest pipeline
//
// Connection handlers parse protocol lines concurrently and submit the
// decoded items to a single ingest goroutine that owns the joiner, the
// ID counter, and the stream clock; no lock is held while parsing or
// writing responses. The pipeline processes items in submission order
// and pushes each item's matches through a per-request sink straight
// into the submitting connection's write buffer — the handler is parked
// on the reply channel for the duration, so the writes are ordered and
// no match slice is materialized anywhere. Every client sees its own
// responses in the order it sent its items, and match output stays
// correctly paired with the item that caused it. STATS and SIZE flow
// through the same pipeline, which makes them consistent snapshots.
//
// A join stream has one arrival order, so ingest itself cannot fan out;
// parallelism comes from inside the joiner. Config.Workers > 1 selects
// the dimension-sharded parallel STR engine, which parallelizes
// candidate generation and verification within each item while emitting
// exactly the sequential engine's matches (Workers ≤ 1 keeps the
// paper's sequential engine).
//
// ADD timestamps must be globally non-decreasing across clients; ADDNOW
// sidesteps that by stamping items with the server's monotonic clock at
// ingest.
//
// # Bounded lateness
//
// A server started with Config.Lateness δ > 0 relaxes the ordering
// contract: a bounded reorder stage (internal/stream.Reorder) sits in
// front of the joiner, items may arrive up to δ behind the newest event
// time seen, and the joiner receives them re-sorted into (time, ID)
// order as the watermark W = maxEventTimeSeen − δ passes them. An item
// behind W is rejected with "ERR stream: item ... behind watermark ..."
// and counted in STATS as late=N. The new command
//
//	WM <timestamp>
//
// is an event-time heartbeat: it promises every producer's clock has
// reached the timestamp, advances the watermark, and answers
// "WM <watermark>" (−Inf while the watermark is undefined). On a
// foreign-join server the watermark is min over the two sides' clocks
// minus δ, and a WM heartbeat advances both sides at once.
//
// One subtlety follows from the shared stream: an ADD or WM that moves
// the watermark can release items buffered by *other* connections, and
// the MATCH lines of a released item are written to the connection
// whose request released it — match output pairs with the releasing
// request, not with the item's original submitter. Clients that need
// every match should drive the stream from one connection or treat the
// server as a firehose per request. WM is rejected on a δ = 0 server,
// where the watermark would be the plain stream clock.
//
// # Cluster extensions
//
// PUT and ADV exist for the cluster coordinator (internal/cluster),
// which fronts N worker servers and must keep their output bit-identical
// to a single process:
//
//	PUT <id> <A|B> <timestamp> <dim>:<val> ...
//
// ingests like ADD but with a caller-assigned stream ID (the coordinator
// owns the global ID sequence) and an explicit side, and — critically —
// takes the coordinates verbatim: they are NOT re-normalized, because the
// coordinator already normalized the vector once and normalizing the
// transmitted values again would perturb the bits and break parity. PUT
// responses carry MATCH lines at full float64 round-trip precision
// (strconv 'g' with precision −1) instead of ADD's human-oriented %.6f.
// The server's next auto-assigned ID advances past every PUT ID.
//
//	ADV <timestamp>
//
// is an engine time barrier: the promise that no item with an earlier
// timestamp will ever arrive. The joiner advances its stream clock
// (expiry + sweep maintenance, window flushes) exactly as the coordinator's
// watermark dictates, and any released matches stream back before the
// "ADV <timestamp>" echo. PUT and ADV are rejected on a bounded-lateness
// server: reordering belongs to exactly one tier, and in cluster mode the
// coordinator owns it (workers run δ = 0).
//
// STATS JSON answers "STATS {…}" with the metrics.Counters JSON object on
// one line, so the coordinator and scrapers aggregate counters without
// parsing the text form. When the joiner itself aggregates counters (the
// coordinator does, summing its workers), the server reports the joiner's
// Stats() instead of its local counters; SIZE likewise prefers the
// joiner's IndexSize() whenever it has one.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"sssj/internal/apss"
	"sssj/internal/core"
	"sssj/internal/index/streaming"
	"sssj/internal/metrics"
	"sssj/internal/stream"
	"sssj/internal/vec"
)

// Config configures a Server.
type Config struct {
	Params apss.Params
	// Workers selects the dimension-sharded parallel STR engine for the
	// default joiner (values ≤ 1 keep the sequential engine). Ignored
	// when NewJoiner is set.
	Workers int
	// Foreign runs the two-stream foreign join: connections tag their
	// items with the SIDE command and only cross-side matches are
	// reported. Applies to the default joiner (a custom NewJoiner must
	// build a foreign-gating joiner itself); the SIDE command is
	// accepted only when this is set.
	Foreign bool
	// Lateness is the event-time lateness bound δ. With δ > 0 a bounded
	// reorder stage admits items up to δ behind the newest event time
	// seen (per side under Foreign), re-sorting them before the joiner;
	// items behind the watermark are rejected, and the WM command is
	// enabled. 0 (the default) keeps the strict in-order contract. Must
	// be finite and >= 0.
	Lateness float64
	// NewJoiner builds the joiner; defaults to STR-L2 (sharded across
	// Config.Workers shards when Workers > 1).
	NewJoiner func(apss.Params, *metrics.Counters) (core.Joiner, error)
	// Logf receives connection-level log lines; nil silences logging.
	Logf func(format string, args ...interface{})
	// Now supplies the clock for ADDNOW; defaults to a monotonic clock
	// with seconds resolution since server start.
	Now func() float64
}

// ingestKind discriminates pipeline requests.
type ingestKind int

const (
	ingestAdd ingestKind = iota
	ingestWM
	ingestAdv
	ingestStats
	ingestSize
)

// ingestReq is one unit of work for the ingest pipeline.
type ingestReq struct {
	kind     ingestKind
	t        float64 // ADD/PUT timestamp (ignored when stampNow), or WM/ADV barrier
	stampNow bool
	side     apss.Side // foreign-join side of the item (A on self-join servers)
	v        vec.Vector
	// explicitID marks a PUT: the item carries the caller-assigned id
	// instead of the server's counter, which advances past it.
	explicitID bool
	id         uint64
	statsJSON  bool // STATS JSON: render counters as a JSON line
	// emit receives the item's matches on the pipeline goroutine, as
	// they are found. The submitting handler is parked on reply for the
	// duration, so writing to its connection buffer is race-free: the
	// reply channel send orders the writes before the handler resumes.
	emit  apss.Sink
	reply chan ingestResp // buffered(1); the pipeline always replies
}

// ingestResp is the pipeline's answer.
type ingestResp struct {
	id   uint64
	info string // STATS/SIZE payload
	err  error
}

// Server is a shared-stream SSSJ service.
type Server struct {
	cfg      Config
	counters metrics.Counters

	// Owned by the ingest pipeline goroutine after New returns.
	joiner core.Joiner
	// sinkJoiner is joiner's push-based face; set when the joiner
	// implements core.SinkJoiner (every built-in one does), so matches
	// stream to the submitting connection without a per-item slice.
	sinkJoiner core.SinkJoiner
	// reo is the bounded-lateness reorder stage in front of the joiner;
	// nil when Config.Lateness is 0 (strict in-order contract).
	reo    *stream.Reorder
	nextID uint64
	lastT  float64
	begun  bool

	reqs       chan ingestReq
	ingestDone chan struct{}

	lnMu      sync.Mutex
	ln        net.Listener
	conns     map[net.Conn]struct{} // open connections, for shutdown interrupt
	wg        sync.WaitGroup        // connection handlers — the only senders on reqs
	done      chan struct{}
	closeOnce sync.Once
}

// New builds a Server and starts its ingest pipeline.
func New(cfg Config) (*Server, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Lateness < 0 || math.IsNaN(cfg.Lateness) || math.IsInf(cfg.Lateness, 0) {
		return nil, fmt.Errorf("server: Lateness must be finite and >= 0, got %v", cfg.Lateness)
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	s := &Server{
		cfg:        cfg,
		done:       make(chan struct{}),
		reqs:       make(chan ingestReq, 64),
		ingestDone: make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	if cfg.Now == nil {
		start := time.Now()
		s.cfg.Now = func() float64 { return time.Since(start).Seconds() }
	}
	mk := cfg.NewJoiner
	if mk == nil {
		mk = func(p apss.Params, c *metrics.Counters) (core.Joiner, error) {
			return core.NewSTRFull(streaming.L2, p, streaming.Options{
				Counters: c,
				Workers:  cfg.Workers,
				Foreign:  cfg.Foreign,
			})
		}
	}
	j, err := mk(cfg.Params, &s.counters)
	if err != nil {
		return nil, err
	}
	s.joiner = j
	s.sinkJoiner, _ = j.(core.SinkJoiner)
	if cfg.Lateness > 0 {
		if cfg.Foreign {
			s.reo = stream.NewSidedReorder(cfg.Lateness)
		} else {
			s.reo = stream.NewReorder(cfg.Lateness)
		}
	}
	go s.ingest()
	return s, nil
}

// ingest is the pipeline goroutine: the sole owner of the joiner, the ID
// counter, and the stream clock. Items are processed in submission order
// and each submitter receives its item's ID and matches, preserving
// per-item match ordering for every client. It replies to every request
// on the queue — Close stops the handlers (the only senders) before
// closing reqs, so an item that reached the queue is always processed
// and answered, never silently dropped mid-shutdown.
func (s *Server) ingest() {
	defer close(s.ingestDone)
	for req := range s.reqs {
		req.reply <- s.serve(req)
	}
}

// serve executes one pipeline request on the pipeline goroutine.
func (s *Server) serve(req ingestReq) ingestResp {
	switch req.kind {
	case ingestStats:
		c := s.counters
		if sp, ok := s.joiner.(interface {
			Stats() (metrics.Counters, error)
		}); ok {
			cc, err := sp.Stats()
			if err != nil {
				return ingestResp{err: err}
			}
			c = cc
		}
		if req.statsJSON {
			b, err := json.Marshal(&c)
			if err != nil {
				return ingestResp{err: err}
			}
			return ingestResp{info: string(b)}
		}
		return ingestResp{info: c.String()}
	case ingestSize:
		if sizer, ok := s.joiner.(interface{ IndexSize() streaming.SizeInfo }); ok {
			sz := sizer.IndexSize()
			return ingestResp{info: fmt.Sprintf("entries=%d residuals=%d lists=%d tracked=%d", sz.PostingEntries, sz.Residuals, sz.Lists, sz.TrackedDims)}
		}
		return ingestResp{info: "unavailable"}
	case ingestWM:
		return s.serveWM(req)
	case ingestAdv:
		return s.serveAdv(req)
	}
	t := req.t
	if req.stampNow {
		t = s.cfg.Now()
		if s.begun && t < s.lastT {
			t = s.lastT // clamp clock regressions
		}
	} else if s.reo == nil && s.begun && t < s.lastT {
		return ingestResp{err: fmt.Errorf("out of order: t=%v after t=%v", t, s.lastT)}
	}
	id := s.nextID
	if req.explicitID {
		id = req.id
	}
	it := stream.Item{ID: id, Time: t, Side: req.side, Vec: req.v}
	if s.reo != nil {
		// The reorder stage owns admission: a late item is rejected with
		// the watermark it fell behind, an admissible one is buffered and
		// every buffered item the new watermark passed flows through the
		// joiner — with its matches written to THIS request's connection
		// (see the package comment on bounded lateness).
		if err := s.reo.Push(it, s.feed(req.emit)); err != nil {
			var late *stream.LateError
			if errors.As(err, &late) {
				s.counters.LateDrops++
			}
			return ingestResp{err: err}
		}
	} else if err := s.feed(req.emit)(it); err != nil {
		return ingestResp{err: err}
	}
	if req.explicitID {
		// Keep auto-assigned IDs ahead of every caller-assigned one.
		if req.id+1 > s.nextID {
			s.nextID = req.id + 1
		}
	} else {
		s.nextID++
	}
	if !s.begun || t > s.lastT {
		s.lastT = t
	}
	s.begun = true
	return ingestResp{id: id}
}

// serveWM executes a WM heartbeat on the pipeline goroutine: the
// reorder stage's clocks advance to req.t (stale heartbeats are no-ops),
// released items flow through the joiner into the requester's
// connection, and the engine's own clock is advanced to the watermark so
// expiration and sweeping happen even on an idle stream.
func (s *Server) serveWM(req ingestReq) ingestResp {
	if err := s.reo.AdvanceTo(req.t, s.feed(req.emit)); err != nil {
		return ingestResp{err: err}
	}
	wm := s.reo.Watermark()
	if !math.IsInf(wm, -1) {
		if adv, ok := s.joiner.(core.Advancer); ok {
			if err := adv.AdvanceTo(wm, req.emit); err != nil {
				return ingestResp{err: err}
			}
		}
	}
	// The heartbeat promises producer clocks reached req.t; keep ADDNOW's
	// clamp floor consistent with that promise.
	if !s.begun || req.t > s.lastT {
		s.lastT = req.t
		s.begun = true
	}
	return ingestResp{info: strconv.FormatFloat(wm, 'g', -1, 64)}
}

// serveAdv executes an ADV barrier on the pipeline goroutine: the joiner
// moves its stream clock to req.t — performing expiry, sweep
// maintenance, and (window modes) watermark-closed flushes — and later
// items behind the barrier are rejected like any time regression. A
// stale barrier is the joiner's no-op.
func (s *Server) serveAdv(req ingestReq) ingestResp {
	adv, ok := s.joiner.(core.Advancer)
	if !ok {
		return ingestResp{err: errors.New("joiner does not support time barriers")}
	}
	if err := adv.AdvanceTo(req.t, req.emit); err != nil {
		return ingestResp{err: err}
	}
	if !s.begun || req.t > s.lastT {
		s.lastT = req.t
		s.begun = true
	}
	return ingestResp{info: strconv.FormatFloat(req.t, 'g', -1, 64)}
}

// feed returns the joiner-facing release target for one request: each
// item flows through the joiner with its matches streaming into emit.
func (s *Server) feed(emit apss.Sink) func(stream.Item) error {
	return func(it stream.Item) error {
		if s.sinkJoiner != nil && emit != nil {
			return s.sinkJoiner.AddTo(it, emit)
		}
		ms, err := s.joiner.Add(it)
		if err != nil {
			return err
		}
		if emit != nil {
			for _, m := range ms {
				emit(m)
			}
		}
		return nil
	}
}

// submit routes one request through the pipeline. Once enqueued, the
// reply is guaranteed: the pipeline runs until Close has stopped every
// handler, and handlers are the only senders.
func (s *Server) submit(req ingestReq) ingestResp {
	req.reply = make(chan ingestResp, 1)
	select {
	case s.reqs <- req:
		return <-req.reply
	case <-s.done:
		return ingestResp{err: errors.New("server shutting down")}
	}
}

// Serve accepts connections on ln until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				s.wg.Wait()
				return nil
			default:
				return err
			}
		}
		// Register the handler under lnMu so Close — which acquires the
		// same lock after closing done — observes either the done check
		// failing here or the registration in wg.Wait, never a handler
		// starting after the pipeline shut down.
		s.lnMu.Lock()
		select {
		case <-s.done:
			s.lnMu.Unlock()
			conn.Close()
			continue // the next Accept fails; the loop exits above
		default:
		}
		s.wg.Add(1)
		s.conns[conn] = struct{}{}
		s.lnMu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.lnMu.Lock()
				delete(s.conns, conn)
				s.lnMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, interrupts connections blocked on network I/O
// (an idle client must not hold shutdown hostage), waits for in-flight
// commands to drain — every item that reached the ingest queue is
// processed and answered, though a reply write can fail once its
// connection is torn down — and then stops the ingest pipeline. Close is
// idempotent; calls after the first return nil without re-waiting.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() { err = s.close() })
	return err
}

func (s *Server) close() error {
	close(s.done)
	s.lnMu.Lock() // barrier against a handler registering after done
	ln := s.ln
	for conn := range s.conns {
		conn.SetDeadline(time.Now()) // wake handlers parked in Read/Write
	}
	s.lnMu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()   // handlers are the only senders on reqs…
	close(s.reqs) // …so this is safe, and ingest drains what remains
	<-s.ingestDone
	return err
}

// handle runs one client connection. side is the connection's current
// foreign-join side: A until a SIDE command changes it.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.cfg.Logf("client %s connected", conn.RemoteAddr())
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	w := bufio.NewWriter(conn)
	side := apss.SideA
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		quit := s.dispatch(w, line, &side)
		if err := w.Flush(); err != nil {
			break
		}
		if quit {
			break
		}
		select {
		case <-s.done:
			return
		default:
		}
	}
	s.cfg.Logf("client %s disconnected", conn.RemoteAddr())
}

// dispatch executes one protocol line, reporting whether to close. side
// is the connection's current foreign-join side, updated by SIDE.
func (s *Server) dispatch(w *bufio.Writer, line string, side *apss.Side) (quit bool) {
	cmd := line
	rest := ""
	if i := strings.IndexByte(line, ' '); i >= 0 {
		cmd, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	switch strings.ToUpper(cmd) {
	case "ADD":
		s.cmdAdd(w, rest, false, *side)
	case "ADDNOW":
		s.cmdAdd(w, rest, true, *side)
	case "PUT":
		if s.reo != nil {
			fmt.Fprintln(w, "ERR PUT requires a strict-order server (Config.Lateness 0)")
			return false
		}
		s.cmdPut(w, rest)
	case "ADV":
		if s.reo != nil {
			fmt.Fprintln(w, "ERR ADV requires a strict-order server (Config.Lateness 0); use WM")
			return false
		}
		t, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			fmt.Fprintf(w, "ERR bad timestamp %q\n", rest)
			return false
		}
		s.cmdAdv(w, t)
	case "SIDE":
		if !s.cfg.Foreign {
			fmt.Fprintln(w, "ERR SIDE requires a foreign-join server")
			return false
		}
		switch strings.ToUpper(rest) {
		case "A":
			*side = apss.SideA
		case "B":
			*side = apss.SideB
		default:
			fmt.Fprintf(w, "ERR bad side %q, want A or B\n", rest)
			return false
		}
		fmt.Fprintf(w, "SIDE %v\n", *side)
	case "WM":
		if s.reo == nil {
			fmt.Fprintln(w, "ERR WM requires a bounded-lateness server (Config.Lateness > 0)")
			return false
		}
		t, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			fmt.Fprintf(w, "ERR bad timestamp %q\n", rest)
			return false
		}
		s.cmdWM(w, t)
	case "STATS":
		resp := s.submit(ingestReq{kind: ingestStats, statsJSON: strings.EqualFold(rest, "JSON")})
		if resp.err != nil {
			fmt.Fprintf(w, "ERR %v\n", resp.err)
			return false
		}
		fmt.Fprintf(w, "STATS %s\n", resp.info)
	case "SIZE":
		resp := s.submit(ingestReq{kind: ingestSize})
		if resp.err != nil {
			fmt.Fprintf(w, "ERR %v\n", resp.err)
			return false
		}
		fmt.Fprintf(w, "SIZE %s\n", resp.info)
	case "PING":
		fmt.Fprintln(w, "PONG")
	case "QUIT":
		fmt.Fprintln(w, "BYE")
		return true
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
	return false
}

// cmdAdd parses one item on the connection goroutine and submits it to
// the ingest pipeline on the connection's current side.
func (s *Server) cmdAdd(w *bufio.Writer, rest string, stampNow bool, side apss.Side) {
	fields := strings.Fields(rest)
	var (
		t     float64
		coord []string
		err   error
	)
	if stampNow {
		coord = fields
	} else {
		if len(fields) == 0 {
			fmt.Fprintln(w, "ERR ADD needs a timestamp")
			return
		}
		t, err = strconv.ParseFloat(fields[0], 64)
		if err != nil {
			fmt.Fprintf(w, "ERR bad timestamp %q\n", fields[0])
			return
		}
		coord = fields[1:]
	}
	v, err := parseCoords(coord)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	// Matches are written straight into the connection buffer by the
	// pipeline goroutine while this handler waits on the reply — no
	// match slice is built anywhere. Write errors are latched (not
	// returned to the joiner, whose processing must not depend on a
	// client's socket) and surface at the Flush in handle.
	resp := s.submit(ingestReq{kind: ingestAdd, t: t, stampNow: stampNow, side: side, v: v, emit: matchEmitter(w, false)})
	if resp.err != nil {
		fmt.Fprintf(w, "ERR %v\n", resp.err)
		return
	}
	fmt.Fprintf(w, "OK %d\n", resp.id)
}

// cmdPut parses and submits a cluster PUT: explicit stream ID, explicit
// side, and coordinates taken verbatim (no re-normalization — the
// coordinator sends an already-normalized vector, and %g round-trips
// float64 exactly). Matches stream back at full precision.
func (s *Server) cmdPut(w *bufio.Writer, rest string) {
	fields := strings.Fields(rest)
	if len(fields) < 3 {
		fmt.Fprintln(w, "ERR PUT needs <id> <A|B> <timestamp> <dim>:<val>...")
		return
	}
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		fmt.Fprintf(w, "ERR bad id %q\n", fields[0])
		return
	}
	var side apss.Side
	switch strings.ToUpper(fields[1]) {
	case "A":
		side = apss.SideA
	case "B":
		side = apss.SideB
	default:
		fmt.Fprintf(w, "ERR bad side %q, want A or B\n", fields[1])
		return
	}
	if side == apss.SideB && !s.cfg.Foreign {
		fmt.Fprintln(w, "ERR side B requires a foreign-join server")
		return
	}
	t, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		fmt.Fprintf(w, "ERR bad timestamp %q\n", fields[2])
		return
	}
	v, err := parseCoordsRaw(fields[3:])
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	resp := s.submit(ingestReq{kind: ingestAdd, t: t, side: side, v: v, explicitID: true, id: id, emit: matchEmitter(w, true)})
	if resp.err != nil {
		fmt.Fprintf(w, "ERR %v\n", resp.err)
		return
	}
	fmt.Fprintf(w, "OK %d\n", resp.id)
}

// cmdAdv submits an engine time barrier; released matches (window
// flushes) stream back at full precision before the echo.
func (s *Server) cmdAdv(w *bufio.Writer, t float64) {
	resp := s.submit(ingestReq{kind: ingestAdv, t: t, emit: matchEmitter(w, true)})
	if resp.err != nil {
		fmt.Fprintf(w, "ERR %v\n", resp.err)
		return
	}
	fmt.Fprintf(w, "ADV %s\n", resp.info)
}

// cmdWM submits a WM heartbeat. Matches of items the advancing
// watermark releases are written to this connection, like cmdAdd's.
func (s *Server) cmdWM(w *bufio.Writer, t float64) {
	resp := s.submit(ingestReq{kind: ingestWM, t: t, emit: matchEmitter(w, false)})
	if resp.err != nil {
		fmt.Fprintf(w, "ERR %v\n", resp.err)
		return
	}
	fmt.Fprintf(w, "WM %s\n", resp.info)
}

// matchEmitter returns the per-request sink that writes MATCH lines into
// the connection buffer on the pipeline goroutine. exact selects full
// float64 round-trip formatting — the cluster paths (PUT/ADV), where
// ADD's human-oriented %.6f truncation would break bit-identical parity
// across the wire. Write errors are latched (never returned to the
// joiner, whose processing must not depend on a client's socket) and
// surface at the Flush in handle.
func matchEmitter(w *bufio.Writer, exact bool) apss.Sink {
	var writeErr error
	return func(m apss.Match) error {
		if writeErr != nil {
			return nil
		}
		if exact {
			_, writeErr = fmt.Fprintf(w, "MATCH %d %d %s %s %s\n", m.X, m.Y,
				strconv.FormatFloat(m.Sim, 'g', -1, 64),
				strconv.FormatFloat(m.Dot, 'g', -1, 64),
				strconv.FormatFloat(m.DT, 'g', -1, 64))
		} else {
			_, writeErr = fmt.Fprintf(w, "MATCH %d %d %.6f %.6f %.6f\n", m.X, m.Y, m.Sim, m.Dot, m.DT)
		}
		return nil
	}
}

// parseCoords parses "dim:val" fields into a normalized vector.
func parseCoords(fields []string) (vec.Vector, error) {
	v, err := parseCoordsRaw(fields)
	if err != nil {
		return vec.Vector{}, err
	}
	return v.Normalize(), nil
}

// parseCoordsRaw parses "dim:val" fields verbatim — PUT's path, where
// the values are already normalized and renormalizing would change bits.
func parseCoordsRaw(fields []string) (vec.Vector, error) {
	dims := make([]uint32, 0, len(fields))
	vals := make([]float64, 0, len(fields))
	for _, f := range fields {
		colon := strings.IndexByte(f, ':')
		if colon <= 0 || colon == len(f)-1 {
			return vec.Vector{}, fmt.Errorf("bad coordinate %q", f)
		}
		d, err := strconv.ParseUint(f[:colon], 10, 32)
		if err != nil {
			return vec.Vector{}, fmt.Errorf("bad dimension %q", f[:colon])
		}
		val, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return vec.Vector{}, fmt.Errorf("bad value %q", f[colon+1:])
		}
		dims = append(dims, uint32(d))
		vals = append(vals, val)
	}
	return vec.New(dims, vals)
}

// Client is a minimal client for the server protocol.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	mu   sync.Mutex
	// ioTimeout bounds each request round-trip; 0 means no deadline.
	ioTimeout time.Duration
}

// Dialer configures connection establishment and per-request deadlines.
// The zero value matches plain Dial: no timeouts, no retries.
type Dialer struct {
	// DialTimeout bounds each connection attempt; 0 means no limit.
	DialTimeout time.Duration
	// IOTimeout is applied as a connection deadline at the start of every
	// request round-trip, so a wedged server surfaces as a timeout error
	// instead of a hang; 0 disables deadlines.
	IOTimeout time.Duration
	// Retries is the number of additional dial attempts after a failure —
	// the coordinator's tolerance for workers that are still binding
	// their listeners. 0 means a single attempt.
	Retries int
	// Backoff is the sleep before the first retry, doubling each attempt;
	// defaults to 50ms when Retries > 0.
	Backoff time.Duration
}

// Dial connects with the configured timeout, retrying transient dial
// failures with exponential backoff.
func (d Dialer) Dial(addr string) (*Client, error) {
	backoff := d.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= d.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		conn, err := net.DialTimeout("tcp", addr, d.DialTimeout)
		if err == nil {
			c := NewClient(conn)
			c.ioTimeout = d.IOTimeout
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("server: dial %s failed after %d attempts: %w", addr, d.Retries+1, lastErr)
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, r: bufio.NewReader(conn)}
}

// beginRequest arms the per-request I/O deadline. Callers hold c.mu.
func (c *Client) beginRequest() {
	if c.ioTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.ioTimeout))
	}
}

// Add submits a timestamped item and returns its stream ID and matches.
func (c *Client) Add(t float64, v vec.Vector) (uint64, []apss.Match, error) {
	return c.add(fmt.Sprintf("ADD %g %s", t, formatCoords(v)))
}

// AddNow submits an item stamped with the server's clock.
func (c *Client) AddNow(v vec.Vector) (uint64, []apss.Match, error) {
	return c.add("ADDNOW " + formatCoords(v))
}

// Put submits an item with a caller-assigned stream ID, side, and
// verbatim (pre-normalized) coordinates — the cluster coordinator's
// ingest path. Matches come back at full float64 precision.
func (c *Client) Put(id uint64, side apss.Side, t float64, v vec.Vector) ([]apss.Match, error) {
	gotID, matches, err := c.add(fmt.Sprintf("PUT %d %v %s %s", id, side, strconv.FormatFloat(t, 'g', -1, 64), formatCoords(v)))
	if err != nil {
		return nil, err
	}
	if gotID != id {
		return matches, fmt.Errorf("server: PUT %d acknowledged as %d", id, gotID)
	}
	return matches, nil
}

// Advance sends an ADV engine time barrier: the promise that no item
// with Time < t will ever be submitted. It returns the matches the
// barrier released (window-mode flushes; empty for plain STR).
func (c *Client) Advance(t float64) ([]apss.Match, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginRequest()
	if _, err := fmt.Fprintf(c.conn, "ADV %s\n", strconv.FormatFloat(t, 'g', -1, 64)); err != nil {
		return nil, err
	}
	var matches []apss.Match
	for {
		resp, err := c.readLine()
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasPrefix(resp, "MATCH "):
			m, err := parseMatchLine(resp)
			if err != nil {
				return nil, err
			}
			matches = append(matches, m)
		case strings.HasPrefix(resp, "ADV "):
			return matches, nil
		case strings.HasPrefix(resp, "ERR "):
			return nil, errors.New(resp[4:])
		default:
			return nil, fmt.Errorf("server: unexpected response %q", resp)
		}
	}
}

func (c *Client) add(line string) (uint64, []apss.Match, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginRequest()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return 0, nil, err
	}
	var matches []apss.Match
	for {
		resp, err := c.readLine()
		if err != nil {
			return 0, nil, err
		}
		switch {
		case strings.HasPrefix(resp, "MATCH "):
			m, err := parseMatchLine(resp)
			if err != nil {
				return 0, nil, err
			}
			matches = append(matches, m)
		case strings.HasPrefix(resp, "OK "):
			id, err := strconv.ParseUint(resp[3:], 10, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("server: bad ok line %q", resp)
			}
			return id, matches, nil
		case strings.HasPrefix(resp, "ERR "):
			return 0, nil, errors.New(resp[4:])
		default:
			return 0, nil, fmt.Errorf("server: unexpected response %q", resp)
		}
	}
}

// readLine reads one trimmed response line. Callers hold c.mu.
func (c *Client) readLine() (string, error) {
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp), nil
}

// parseMatchLine decodes a MATCH response at full precision.
func parseMatchLine(resp string) (apss.Match, error) {
	f := strings.Fields(resp)
	if len(f) != 6 || f[0] != "MATCH" {
		return apss.Match{}, fmt.Errorf("server: bad match line %q", resp)
	}
	var m apss.Match
	var err error
	if m.X, err = strconv.ParseUint(f[1], 10, 64); err != nil {
		return apss.Match{}, fmt.Errorf("server: bad match line %q: %w", resp, err)
	}
	if m.Y, err = strconv.ParseUint(f[2], 10, 64); err != nil {
		return apss.Match{}, fmt.Errorf("server: bad match line %q: %w", resp, err)
	}
	if m.Sim, err = strconv.ParseFloat(f[3], 64); err != nil {
		return apss.Match{}, fmt.Errorf("server: bad match line %q: %w", resp, err)
	}
	if m.Dot, err = strconv.ParseFloat(f[4], 64); err != nil {
		return apss.Match{}, fmt.Errorf("server: bad match line %q: %w", resp, err)
	}
	if m.DT, err = strconv.ParseFloat(f[5], 64); err != nil {
		return apss.Match{}, fmt.Errorf("server: bad match line %q: %w", resp, err)
	}
	return m, nil
}

// Watermark sends a WM event-time heartbeat (bounded-lateness servers
// only): a promise that every producer's clock has reached t. It
// returns the server's watermark after the heartbeat — −Inf while
// undefined — along with the matches of any items the advancing
// watermark released.
func (c *Client) Watermark(t float64) (float64, []apss.Match, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginRequest()
	if _, err := fmt.Fprintf(c.conn, "WM %g\n", t); err != nil {
		return 0, nil, err
	}
	var matches []apss.Match
	for {
		resp, err := c.readLine()
		if err != nil {
			return 0, nil, err
		}
		switch {
		case strings.HasPrefix(resp, "MATCH "):
			m, err := parseMatchLine(resp)
			if err != nil {
				return 0, nil, err
			}
			matches = append(matches, m)
		case strings.HasPrefix(resp, "WM "):
			wm, err := strconv.ParseFloat(resp[3:], 64)
			if err != nil {
				return 0, nil, fmt.Errorf("server: bad watermark line %q", resp)
			}
			return wm, matches, nil
		case strings.HasPrefix(resp, "ERR "):
			return 0, nil, errors.New(resp[4:])
		default:
			return 0, nil, fmt.Errorf("server: unexpected response %q", resp)
		}
	}
}

// Side sets the connection's foreign-join side for subsequent Add and
// AddNow calls. The server must be running a foreign join
// (Config.Foreign); new connections start on side A.
func (c *Client) Side(side apss.Side) error {
	_, err := c.simple("SIDE "+side.String(), "SIDE "+side.String())
	return err
}

// Stats fetches the server's counter line.
func (c *Client) Stats() (string, error) { return c.simple("STATS", "STATS ") }

// StatsJSON fetches the server's counters via STATS JSON and decodes
// them — the coordinator's aggregation path, immune to text-format
// drift.
func (c *Client) StatsJSON() (metrics.Counters, error) {
	payload, err := c.simple("STATS JSON", "STATS ")
	if err != nil {
		return metrics.Counters{}, err
	}
	var counters metrics.Counters
	if err := json.Unmarshal([]byte(payload), &counters); err != nil {
		return metrics.Counters{}, fmt.Errorf("server: bad STATS JSON payload %q: %w", payload, err)
	}
	return counters, nil
}

// Size fetches the server's index-occupancy line.
func (c *Client) Size() (string, error) { return c.simple("SIZE", "SIZE ") }

// SizeInfo fetches and decodes the server's index occupancy.
func (c *Client) SizeInfo() (streaming.SizeInfo, error) {
	payload, err := c.Size()
	if err != nil {
		return streaming.SizeInfo{}, err
	}
	var sz streaming.SizeInfo
	if _, err := fmt.Sscanf(payload, "entries=%d residuals=%d lists=%d tracked=%d",
		&sz.PostingEntries, &sz.Residuals, &sz.Lists, &sz.TrackedDims); err != nil {
		return streaming.SizeInfo{}, fmt.Errorf("server: bad SIZE payload %q: %w", payload, err)
	}
	return sz, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	_, err := c.simple("PING", "PONG")
	return err
}

func (c *Client) simple(cmd, prefix string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.beginRequest()
	if _, err := fmt.Fprintln(c.conn, cmd); err != nil {
		return "", err
	}
	resp, err := c.readLine()
	if err != nil {
		return "", err
	}
	if strings.HasPrefix(resp, "ERR ") {
		return "", errors.New(resp[4:])
	}
	if !strings.HasPrefix(resp, prefix) {
		return "", fmt.Errorf("server: unexpected response %q", resp)
	}
	return strings.TrimPrefix(resp, prefix), nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintln(c.conn, "QUIT")
	return c.conn.Close()
}

// formatCoords renders a vector in the protocol's dim:val form.
func formatCoords(v vec.Vector) string {
	var sb strings.Builder
	for i := range v.Dims {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d:%g", v.Dims[i], v.Vals[i])
	}
	return sb.String()
}
