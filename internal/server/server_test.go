package server

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"

	"sssj/internal/apss"
	"sssj/internal/vec"
)

// testServer is a running server plus the address it listens on.
type testServer struct {
	*Server
	addr string
}

// startServer spins up a server on a random port.
func startServer(t *testing.T, cfg Config) testServer {
	t.Helper()
	if cfg.Params == (apss.Params{}) {
		cfg.Params = apss.Params{Theta: 0.7, Lambda: 0.1}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() { s.Close() })
	return testServer{Server: s, addr: ln.Addr().String()}
}

func dialT(t *testing.T, s testServer) *Client {
	t.Helper()
	c, err := Dial(s.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestAddAndMatch(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)

	v := vec.MustNew([]uint32{1, 2}, []float64{1, 1}).Normalize()
	id0, ms, err := c.Add(0, v)
	if err != nil || id0 != 0 || len(ms) != 0 {
		t.Fatalf("first add: id=%d ms=%v err=%v", id0, ms, err)
	}
	id1, ms, err := c.Add(1, v)
	if err != nil || id1 != 1 {
		t.Fatalf("second add: id=%d err=%v", id1, err)
	}
	if len(ms) != 1 || ms[0].X != 1 || ms[0].Y != 0 {
		t.Fatalf("match = %+v", ms)
	}
	if ms[0].Sim < 0.7 || ms[0].DT != 1 {
		t.Fatalf("match fields = %+v", ms[0])
	}
}

func TestCrossClientMatches(t *testing.T) {
	// Two clients feed the same stream; the pair spans connections.
	s := startServer(t, Config{})
	c1 := dialT(t, s)
	c2 := dialT(t, s)
	v := vec.MustNew([]uint32{7}, []float64{1})
	if _, _, err := c1.Add(10, v); err != nil {
		t.Fatal(err)
	}
	_, ms, err := c2.Add(10.5, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("cross-client match missing: %v", ms)
	}
}

func TestAddNowAssignsServerClock(t *testing.T) {
	clock := 0.0
	s := startServer(t, Config{Now: func() float64 { clock += 0.25; return clock }})
	c := dialT(t, s)
	v := vec.MustNew([]uint32{3}, []float64{1})
	if _, _, err := c.AddNow(v); err != nil {
		t.Fatal(err)
	}
	_, ms, err := c.AddNow(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].DT != 0.25 {
		t.Fatalf("server-stamped match = %+v", ms)
	}
}

func TestOutOfOrderRejectedAndRecoverable(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)
	v := vec.MustNew([]uint32{1}, []float64{1})
	if _, _, err := c.Add(5, v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Add(4, v); err == nil {
		t.Fatal("out-of-order accepted")
	}
	// The connection (and the joiner) survive the rejected item.
	if _, _, err := c.Add(6, v); err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
}

func TestMalformedInputs(t *testing.T) {
	s := startServer(t, Config{})
	conn, err := net.Dial("tcp", s.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(line string) string {
		fmt.Fprintln(conn, line)
		resp, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("read after %q: %v", line, err)
		}
		return strings.TrimSpace(resp)
	}
	for _, tc := range []string{
		"ADD",
		"ADD notanumber 1:1",
		"ADD 1 garbage",
		"ADD 1 1:",
		"ADD 1 :1",
		"BOGUS command",
	} {
		if resp := send(tc); !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q got %q, want ERR", tc, resp)
		}
	}
	if resp := send("PING"); resp != "PONG" {
		t.Fatalf("ping got %q", resp)
	}
	if resp := send("QUIT"); resp != "BYE" {
		t.Fatalf("quit got %q", resp)
	}
}

func TestStatsAndSize(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)
	v := vec.MustNew([]uint32{2, 5}, []float64{1, 2}).Normalize()
	if _, _, err := c.Add(0, v); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil || !strings.Contains(st, "items=1") {
		t.Fatalf("stats = %q err=%v", st, err)
	}
	sz, err := c.Size()
	if err != nil || !strings.Contains(sz, "entries=") {
		t.Fatalf("size = %q err=%v", sz, err)
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	// Many goroutines hammer ADDNOW concurrently; the shared joiner must
	// stay consistent and assign unique IDs.
	s := startServer(t, Config{})
	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	ids := make(chan uint64, clients*perClient)
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			v := vec.MustNew([]uint32{uint32(g + 1)}, []float64{1})
			for i := 0; i < perClient; i++ {
				id, _, err := c.AddNow(v)
				if err != nil {
					errs <- err
					return
				}
				ids <- id
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	n := 0
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		n++
	}
	if n != clients*perClient {
		t.Fatalf("processed %d items", n)
	}
}

func TestServerValidation(t *testing.T) {
	if _, err := New(Config{Params: apss.Params{Theta: 0, Lambda: 1}}); err == nil {
		t.Fatal("bad params accepted")
	}
}

// TestWorkersParity: a server built with the sharded parallel engine
// must return exactly the same per-item matches as a sequential server
// for the same submitted stream.
func TestWorkersParity(t *testing.T) {
	type labeled struct {
		id uint64
		ms []apss.Match
	}
	run := func(workers int) []labeled {
		s := startServer(t, Config{Workers: workers, Params: apss.Params{Theta: 0.5, Lambda: 0.05}})
		c := dialT(t, s)
		var out []labeled
		for i := 0; i < 120; i++ {
			v := vec.MustNew(
				[]uint32{uint32(i % 7), uint32(i%7 + 3), uint32(i%5 + 9)},
				[]float64{1, 0.8, 0.6},
			)
			id, ms, err := c.Add(float64(i)*0.3, v)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, labeled{id, ms})
		}
		return out
	}
	seq := run(0)
	par := run(4)
	if len(seq) != len(par) {
		t.Fatalf("item counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].id != par[i].id {
			t.Fatalf("item %d: id %d vs %d", i, seq[i].id, par[i].id)
		}
		if !apss.EqualMatchSets(seq[i].ms, par[i].ms, 1e-12) {
			t.Fatalf("item %d: matches diverge (%d vs %d)", i, len(seq[i].ms), len(par[i].ms))
		}
	}
}

// TestPipelineOrderingPerClient: responses come back in submission
// order with strictly increasing IDs for a client that interleaves its
// adds with other clients' traffic.
func TestPipelineOrderingPerClient(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // background traffic on a second connection
		defer wg.Done()
		c, err := Dial(s.addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		v := vec.MustNew([]uint32{99}, []float64{1})
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := c.AddNow(v); err != nil {
				return
			}
		}
	}()
	c := dialT(t, s)
	last := uint64(0)
	v := vec.MustNew([]uint32{7}, []float64{1})
	for i := 0; i < 200; i++ {
		id, _, err := c.AddNow(v)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && id <= last {
			t.Fatalf("ids not increasing for one client: %d after %d", id, last)
		}
		last = id
	}
	close(stop)
	wg.Wait()
}

// TestStatsDuringTraffic: STATS and SIZE flow through the ingest
// pipeline, so they are consistent snapshots even under concurrent adds.
func TestStatsDuringTraffic(t *testing.T) {
	s := startServer(t, Config{Workers: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(s.addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			v := vec.MustNew([]uint32{uint32(g)}, []float64{1})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := c.AddNow(v); err != nil {
					return
				}
			}
		}(g)
	}
	c := dialT(t, s)
	for i := 0; i < 20; i++ {
		if _, err := c.Stats(); err != nil {
			t.Fatal(err)
		}
		info, err := c.Size()
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(info, "entries=") {
			t.Fatalf("unexpected SIZE payload %q", info)
		}
	}
	close(stop)
	wg.Wait()
}

// TestForeignSideFraming covers the SIDE command: a foreign-join server
// matches only cross-side items, connections default to side A, and a
// self-join server rejects SIDE outright.
func TestForeignSideFraming(t *testing.T) {
	s := startServer(t, Config{Foreign: true})
	a := dialT(t, s) // stays on the default side A
	b := dialT(t, s)
	if err := b.Side(apss.SideB); err != nil {
		t.Fatal(err)
	}

	v := vec.MustNew([]uint32{1, 2}, []float64{1, 1}).Normalize()
	idA, ms, err := a.Add(0, v)
	if err != nil || len(ms) != 0 {
		t.Fatalf("first add: id=%d ms=%v err=%v", idA, ms, err)
	}
	// A second side-A item: identical vector, but same side — no match.
	if _, ms, err = a.Add(0.1, v); err != nil || len(ms) != 0 {
		t.Fatalf("same-side add matched: ms=%v err=%v", ms, err)
	}
	// A side-B item matches both side-A items.
	_, ms, err = b.Add(0.2, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("cross-side add matched %d items, want 2: %v", len(ms), ms)
	}
	// Switching a connection's side applies to its subsequent adds.
	if err := a.Side(apss.SideB); err != nil {
		t.Fatal(err)
	}
	if _, ms, err = a.Add(0.3, v); err != nil || len(ms) != 2 {
		t.Fatalf("re-sided add: ms=%v err=%v (want the 2 side-A items)", ms, err)
	}
}

func TestSideRejectedOnSelfJoinServer(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)
	if err := c.Side(apss.SideB); err == nil {
		t.Fatal("SIDE accepted on a self-join server")
	}
	// The connection survives the rejected command.
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestLatenessReordersWithinDelta: with Config.Lateness items may
// arrive out of order within δ; the joiner sees them re-sorted, and the
// matches of released items ride on the releasing request's reply.
func TestLatenessReordersWithinDelta(t *testing.T) {
	s := startServer(t, Config{Lateness: 5, Params: apss.Params{Theta: 0.7, Lambda: 0.01}})
	c := dialT(t, s)
	v := vec.MustNew([]uint32{1}, []float64{1})
	if _, ms, err := c.Add(10, v); err != nil || len(ms) != 0 {
		t.Fatalf("t=10: ms=%v err=%v", ms, err)
	}
	// 3 behind the newest time: admissible under δ=5, buffered.
	id, ms, err := c.Add(7, v)
	if err != nil || id != 1 || len(ms) != 0 {
		t.Fatalf("t=7: id=%d ms=%v err=%v", id, ms, err)
	}
	// t=20 pushes the watermark to 15, releasing t=7 (id 1) then t=10
	// (id 0); the pair they form is reported on THIS request.
	id, ms, err = c.Add(20, v)
	if err != nil || id != 2 {
		t.Fatalf("t=20: id=%d err=%v", id, err)
	}
	if len(ms) != 1 || ms[0].X != 0 || ms[0].Y != 1 || ms[0].DT != 3 {
		t.Fatalf("released match = %+v, want X=0 Y=1 DT=3", ms)
	}
}

// TestLatenessRejectsBehindWatermark: an item behind W = maxT − δ gets
// an ERR reply, the connection survives, and STATS counts the drop.
func TestLatenessRejectsBehindWatermark(t *testing.T) {
	s := startServer(t, Config{Lateness: 5, Params: apss.Params{Theta: 0.7, Lambda: 0.01}})
	c := dialT(t, s)
	v := vec.MustNew([]uint32{1}, []float64{1})
	if _, _, err := c.Add(20, v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Add(14, v); err == nil {
		t.Fatal("item behind the watermark accepted")
	}
	if _, _, err := c.Add(16, v); err != nil {
		t.Fatalf("admissible item after a late one: %v", err)
	}
	st, err := c.Stats()
	if err != nil || !strings.Contains(st, "late=1") {
		t.Fatalf("stats = %q err=%v, want late=1", st, err)
	}
}

// TestWatermarkHeartbeat: WM advances the watermark without an item,
// releasing buffered items (their matches ride on the WM reply), and
// answers with the new watermark. Stale heartbeats are no-ops.
func TestWatermarkHeartbeat(t *testing.T) {
	s := startServer(t, Config{Lateness: 5, Params: apss.Params{Theta: 0.7, Lambda: 0.01}})
	c := dialT(t, s)
	v := vec.MustNew([]uint32{1}, []float64{1})
	if _, _, err := c.Add(10, v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Add(12, v); err != nil {
		t.Fatal(err)
	}
	wm, ms, err := c.Watermark(20)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 15 {
		t.Fatalf("watermark = %v, want 15", wm)
	}
	if len(ms) != 1 || ms[0].DT != 2 {
		t.Fatalf("released matches = %+v, want one with DT=2", ms)
	}
	// Stale heartbeat: clocks only move forward.
	wm, ms, err = c.Watermark(3)
	if err != nil || wm != 15 || len(ms) != 0 {
		t.Fatalf("stale WM: wm=%v ms=%v err=%v", wm, ms, err)
	}
	// The heartbeat floor applies to admission like any clock advance.
	if _, _, err := c.Add(14, v); err == nil {
		t.Fatal("item behind the heartbeat watermark accepted")
	}
}

// TestWatermarkForeignMinOfSides: on a foreign-join server the
// watermark is min over both sides' clocks − δ, −Inf until both sides
// are seen; a WM heartbeat advances both sides at once.
func TestWatermarkForeignMinOfSides(t *testing.T) {
	s := startServer(t, Config{Foreign: true, Lateness: 2, Params: apss.Params{Theta: 0.7, Lambda: 0.01}})
	a := dialT(t, s)
	v := vec.MustNew([]uint32{1}, []float64{1})
	if _, ms, err := a.Add(10, v); err != nil || len(ms) != 0 {
		t.Fatalf("side-A add: ms=%v err=%v", ms, err)
	}
	wm, ms, err := a.Watermark(10)
	if err != nil || len(ms) != 0 {
		t.Fatalf("WM 10: ms=%v err=%v", ms, err)
	}
	if wm != 8 {
		t.Fatalf("watermark = %v, want 8 (both clocks at 10, δ=2)", wm)
	}
	// Advancing past the buffered item releases it; being alone on its
	// side it matches nothing.
	wm, ms, err = a.Watermark(15)
	if err != nil || wm != 13 || len(ms) != 0 {
		t.Fatalf("WM 15: wm=%v ms=%v err=%v", wm, ms, err)
	}
	// A side-B item near the released side-A one pairs with it.
	b := dialT(t, s)
	if err := b.Side(apss.SideB); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Add(13.5, v); err != nil {
		t.Fatal(err)
	}
	wm, ms, err = b.Watermark(20)
	if err != nil || wm != 18 {
		t.Fatalf("WM 20: wm=%v err=%v", wm, err)
	}
	if len(ms) != 1 {
		t.Fatalf("cross-side match missing after release: %v", ms)
	}
}

// TestWatermarkRequiresLateness: WM is rejected on a strict-order
// server, and the connection survives.
func TestWatermarkRequiresLateness(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)
	if _, _, err := c.Watermark(10); err == nil {
		t.Fatal("WM accepted on a strict-order server")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRejectsBadLateness: negative or non-finite δ is a
// configuration error.
func TestServerRejectsBadLateness(t *testing.T) {
	for _, d := range []float64{-1, math.Inf(1), math.NaN()} {
		if _, err := New(Config{Params: apss.Params{Theta: 0.7, Lambda: 0.1}, Lateness: d}); err == nil {
			t.Fatalf("Lateness=%v accepted", d)
		}
	}
}
