package server

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sssj/internal/apss"
	"sssj/internal/core"
	"sssj/internal/dimorder"
	"sssj/internal/index/streaming"
	"sssj/internal/metrics"
	"sssj/internal/stream"
)

// SessionOptions is the per-tenant configuration a SESSION command
// creates a joiner from: the option surface of one join, independent of
// every other session on the server. The protocol form is space-
// separated k=v tokens — theta=0.7 lambda=0.01 index=L2 join=foreign
// lateness=3 workers=4 queue=64 shard=0/2 — and unset keys inherit the
// server's own Config, so "SESSION fast theta=0.9" differs from the
// default session in θ alone.
type SessionOptions struct {
	// Theta and Lambda are the join parameters (keys "theta", "lambda").
	Theta, Lambda float64
	// Index is the streaming scheme: "L2" (default), "INV", "L2AP",
	// "AP", or "AUTO" — the online engine selector, which starts on INV
	// and promotes itself as the stream warrants (key "index").
	Index string
	// Workers is the in-process dimension-shard count of the parallel
	// STR engine; ≤ 1 runs the sequential engine (key "workers").
	Workers int
	// Foreign selects the two-stream foreign join; connections then tag
	// items with SIDE (key "join", values "self"/"foreign").
	Foreign bool
	// Lateness is the event-time lateness bound δ of the session's
	// reorder stage (key "lateness"). Sessions with δ > 0 accept WM and
	// reject PUT/ADV, exactly like a whole server configured with
	// Config.Lateness.
	Lateness float64
	// Queue bounds the session's ingest queue: how many submitted
	// commands may wait for the session pipeline before further items
	// are refused with the typed BUSY reply (key "queue"; default
	// DefaultQueue).
	Queue int
	// Shard runs the session as cluster worker Shard.ID of Shard.N (key
	// "shard", value "i/N") — the session-scoped form of sssjd -shard,
	// which lets one daemon host worker shards of several clusters.
	Shard streaming.Shard
	// Rerank enables the online dimension re-ranker (key "rerank",
	// values "docfreq" or "maxval"; empty disables). Together with
	// index=auto this is the session-scoped form of the library's
	// Adaptive options; the reported pair set is unchanged.
	Rerank string
	// Cadence is the adaptation review cadence in items (key "cadence";
	// 0 uses the library default). Only valid with rerank or index=auto.
	Cadence int
}

// DefaultQueue is the ingest-queue bound of sessions that do not set
// the queue option (and of Config.Queue when zero): deep enough that a
// fleet of well-behaved connections never sees BUSY, shallow enough
// that a stalled consumer cannot buffer unbounded work.
const DefaultQueue = 64

// optionsFor derives the default session's options from a server
// Config.
func optionsFor(cfg Config) SessionOptions {
	return SessionOptions{
		Theta:    cfg.Params.Theta,
		Lambda:   cfg.Params.Lambda,
		Index:    "L2",
		Workers:  cfg.Workers,
		Foreign:  cfg.Foreign,
		Lateness: cfg.Lateness,
		Queue:    cfg.Queue,
	}
}

// withDefaults fills unset fields.
func (o SessionOptions) withDefaults() SessionOptions {
	if o.Index == "" {
		o.Index = "L2"
	}
	if o.Queue <= 0 {
		o.Queue = DefaultQueue
	}
	return o
}

// validate rejects option combinations no session can run.
func (o SessionOptions) validate() error {
	if err := (apss.Params{Theta: o.Theta, Lambda: o.Lambda}).Validate(); err != nil {
		return err
	}
	if o.Lateness < 0 || math.IsNaN(o.Lateness) || math.IsInf(o.Lateness, 0) {
		return fmt.Errorf("lateness must be finite and >= 0, got %v", o.Lateness)
	}
	switch o.Index {
	case "L2", "INV", "L2AP", "AP", "AUTO":
	default:
		return fmt.Errorf("unknown index %q (want L2, INV, L2AP, AP, or auto)", o.Index)
	}
	switch o.Rerank {
	case "", "docfreq", "maxval":
	default:
		return fmt.Errorf("unknown rerank %q (want docfreq or maxval)", o.Rerank)
	}
	if o.Cadence < 0 {
		return fmt.Errorf("cadence must be >= 0, got %d", o.Cadence)
	}
	if o.Cadence > 0 && !o.adaptive() {
		return fmt.Errorf("cadence is set but neither rerank nor index=auto is enabled")
	}
	if o.Shard.N > 0 {
		if o.Workers > 1 {
			return fmt.Errorf("shard sessions are the cluster sharding; combine with workers <= 1")
		}
		if o.Lateness > 0 {
			return fmt.Errorf("shard sessions keep strict ordering (the coordinator owns reordering); lateness must be 0")
		}
		if o.adaptive() {
			return fmt.Errorf("shard sessions cannot self-tune (coordinator routing is keyed by natural dimensions)")
		}
	}
	return nil
}

// adaptive reports whether the options enable the self-tuning layer.
func (o SessionOptions) adaptive() bool { return o.Index == "AUTO" || o.Rerank != "" }

// adaptFor maps the protocol options onto the streaming Adapt config.
func (o SessionOptions) adaptFor() streaming.Adapt {
	if !o.adaptive() {
		return streaming.Adapt{}
	}
	ad := streaming.Adapt{Cadence: o.Cadence, Auto: o.Index == "AUTO"}
	switch o.Rerank {
	case "docfreq":
		ad.Rerank = dimorder.DocFreqAsc
	case "maxval":
		ad.Rerank = dimorder.MaxValueDesc
	}
	return ad
}

// String renders the options in the protocol's k=v form — the exact
// tokens parseSessionOptions accepts, which is how MIGRATE re-creates
// the session on the target daemon.
func (o SessionOptions) String() string {
	o = o.withDefaults()
	join := "self"
	if o.Foreign {
		join = "foreign"
	}
	s := fmt.Sprintf("theta=%s lambda=%s index=%s join=%s lateness=%s workers=%d queue=%d",
		strconv.FormatFloat(o.Theta, 'g', -1, 64),
		strconv.FormatFloat(o.Lambda, 'g', -1, 64),
		o.Index, join,
		strconv.FormatFloat(o.Lateness, 'g', -1, 64),
		o.Workers, o.Queue)
	if o.Shard.N > 0 {
		s += fmt.Sprintf(" shard=%d/%d", o.Shard.ID, o.Shard.N)
	}
	if o.Rerank != "" {
		s += " rerank=" + o.Rerank
	}
	if o.Cadence > 0 {
		s += fmt.Sprintf(" cadence=%d", o.Cadence)
	}
	return s
}

// parseSessionOptions parses SESSION's k=v tokens over a base of
// defaults (the server's own configuration).
func parseSessionOptions(base SessionOptions, toks []string) (SessionOptions, error) {
	o := base.withDefaults()
	for _, tok := range toks {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			return SessionOptions{}, fmt.Errorf("bad session option %q, want k=v", tok)
		}
		key, val := strings.ToLower(tok[:eq]), tok[eq+1:]
		switch key {
		case "theta", "lambda", "lateness":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return SessionOptions{}, fmt.Errorf("bad %s %q", key, val)
			}
			switch key {
			case "theta":
				o.Theta = f
			case "lambda":
				o.Lambda = f
			default:
				o.Lateness = f
			}
		case "index":
			o.Index = strings.ToUpper(val)
		case "rerank":
			o.Rerank = strings.ToLower(val)
		case "cadence":
			n, err := strconv.Atoi(val)
			if err != nil {
				return SessionOptions{}, fmt.Errorf("bad cadence %q", val)
			}
			o.Cadence = n
		case "join":
			switch strings.ToLower(val) {
			case "self":
				o.Foreign = false
			case "foreign":
				o.Foreign = true
			default:
				return SessionOptions{}, fmt.Errorf("bad join %q, want self or foreign", val)
			}
		case "workers", "queue":
			n, err := strconv.Atoi(val)
			if err != nil {
				return SessionOptions{}, fmt.Errorf("bad %s %q", key, val)
			}
			if key == "workers" {
				o.Workers = n
			} else {
				o.Queue = n
			}
		case "shard":
			slash := strings.IndexByte(val, '/')
			if slash <= 0 {
				return SessionOptions{}, fmt.Errorf(`bad shard %q, want "i/N"`, val)
			}
			id, err1 := strconv.Atoi(val[:slash])
			n, err2 := strconv.Atoi(val[slash+1:])
			if err1 != nil || err2 != nil || n < 1 || id < 0 || id >= n {
				return SessionOptions{}, fmt.Errorf(`bad shard %q, want "i/N" with 0 <= i < N`, val)
			}
			o.Shard = streaming.Shard{ID: id, N: n}
		default:
			return SessionOptions{}, fmt.Errorf("unknown session option %q", key)
		}
	}
	if err := o.validate(); err != nil {
		return SessionOptions{}, err
	}
	return o, nil
}

// kindFor maps the option's index name (already validated).
func kindFor(index string) streaming.Kind {
	switch index {
	case "INV", "AUTO": // the auto ladder starts on the INV floor
		return streaming.INV
	case "L2AP":
		return streaming.L2AP
	case "AP":
		return streaming.AP
	default:
		return streaming.L2
	}
}

// sessionSnapshot is the scrape-safe copy of a session's observable
// state, published by the pipeline goroutine under snapMu after every
// request it serves. The /metrics handler and SESSIONS listing read the
// snapshot instead of the live joiner, so a stalled session (a consumer
// not draining its socket) serves its last known state rather than
// stalling observability with it.
type sessionSnapshot struct {
	counters metrics.Counters
	hist     metrics.Histogram
	size     streaming.SizeInfo
	arena    streaming.BlockInfo
	hasArena bool
	adapt    streaming.AdaptState
	hasAdapt bool
}

// session is one tenant: a joiner with its own options, ID space,
// stream clock, reorder stage, counters, latency histogram, and bounded
// ingest queue, driven by a dedicated pipeline goroutine. Connections
// attach to a session (SESSION command) and submit requests to its
// queue; the pipeline is the sole owner of everything below reqs.
type session struct {
	name string
	srv  *Server
	opts SessionOptions

	// Owned by the pipeline goroutine.
	counters   metrics.Counters
	joiner     core.Joiner
	sinkJoiner core.SinkJoiner
	reo        *stream.Reorder
	nextID     uint64
	lastT      float64
	begun      bool
	hist       metrics.Histogram // per-item ingest latency, nanoseconds
	// moved, once set, is the peer address the session migrated to:
	// every subsequent request is answered with the typed MOVED reply
	// and the joiner is released. Atomic because /metrics reads it from
	// the scrape goroutine; only the pipeline writes it.
	moved atomic.Pointer[string]

	reqs     chan ingestReq
	pipeDone chan struct{}

	// busy counts ingest submissions refused with the BUSY reply
	// (written by connection handlers, read by /metrics).
	busy atomic.Int64
	// liveEntries mirrors the last sampled PostingEntries for the
	// server-wide entry-budget check (see Config.EntryBudget).
	liveEntries atomic.Int64

	// snapMu guards only the snapshot copy, held for the duration of a
	// struct assignment.
	snapMu sync.Mutex
	snap   sessionSnapshot
}

// snapshot returns a copy of the session's published state.
func (s *session) snapshot() sessionSnapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snap
}

// publish copies the pipeline-owned state into the snapshot. sampleSize
// additionally refreshes the index-occupancy and arena figures, which
// cost a walk over the posting lists and are therefore sampled (every
// sizeSampleEvery items, at creation, and on STATS/SIZE requests)
// rather than taken per item.
func (s *session) publish(sampleSize bool) {
	var size streaming.SizeInfo
	var arena streaming.BlockInfo
	var adapt streaming.AdaptState
	hasArena, hasAdapt := false, false
	if sampleSize && s.joiner != nil {
		if sizer, ok := s.joiner.(interface{ IndexSize() streaming.SizeInfo }); ok {
			size = sizer.IndexSize()
		}
		if ai, ok := s.joiner.(interface {
			ArenaInfo() (streaming.BlockInfo, bool)
		}); ok {
			arena, hasArena = ai.ArenaInfo()
		}
		if ad, ok := s.joiner.(interface {
			AdaptInfo() (streaming.AdaptState, bool)
		}); ok {
			adapt, hasAdapt = ad.AdaptInfo()
		}
		s.liveEntries.Store(int64(size.PostingEntries))
	}
	s.snapMu.Lock()
	s.snap.counters = s.counters
	s.snap.hist = s.hist
	if sampleSize {
		s.snap.size = size
		s.snap.arena = arena
		s.snap.hasArena = hasArena
		s.snap.adapt = adapt
		s.snap.hasAdapt = hasAdapt
	}
	s.snapMu.Unlock()
}

// sizeSampleEvery is how many processed items may pass between index
// occupancy samples: Size() walks the posting-list map, so taking it
// per item would tax the hot path for a gauge nobody scrapes that fast.
const sizeSampleEvery = 32

// run is the session pipeline goroutine: the sole owner of the joiner,
// ID counter, and stream clock. It mirrors the single-tenant pipeline's
// guarantee — every request that reached the queue is served and
// answered, in submission order — per session.
func (s *session) run() {
	defer close(s.pipeDone)
	items := 0
	for req := range s.reqs {
		resp := s.serve(req)
		if req.kind == ingestAdd {
			items++
		}
		s.publish(req.kind != ingestAdd || items%sizeSampleEvery == 0)
		req.reply <- resp
	}
}

// submit routes one request into the session queue. When wait is false
// (item ingest) a full queue is refused immediately with errBusy — the
// typed backpressure contract — instead of parking the handler; control
// requests wait, bounded by server shutdown.
func (s *session) submit(req ingestReq, wait bool) ingestResp {
	req.reply = make(chan ingestResp, 1)
	if wait {
		select {
		case s.reqs <- req:
			return <-req.reply
		case <-s.srv.done:
			return ingestResp{err: errShutdown}
		}
	}
	select {
	case s.reqs <- req:
		return <-req.reply
	case <-s.srv.done:
		return ingestResp{err: errShutdown}
	default:
		s.busy.Add(1)
		return ingestResp{busy: true}
	}
}

// movedAddr returns the peer address the session migrated to, or "".
func (s *session) movedAddr() string {
	if m := s.moved.Load(); m != nil {
		return *m
	}
	return ""
}

// serve executes one pipeline request on the pipeline goroutine.
func (s *session) serve(req ingestReq) ingestResp {
	if m := s.movedAddr(); m != "" {
		return ingestResp{moved: m}
	}
	switch req.kind {
	case ingestStats:
		c := s.counters
		if sp, ok := s.joiner.(interface {
			Stats() (metrics.Counters, error)
		}); ok {
			cc, err := sp.Stats()
			if err != nil {
				return ingestResp{err: err}
			}
			c = cc
		}
		if req.statsJSON {
			b, err := marshalCounters(&c)
			if err != nil {
				return ingestResp{err: err}
			}
			return ingestResp{info: b}
		}
		return ingestResp{info: c.String()}
	case ingestSize:
		if sizer, ok := s.joiner.(interface{ IndexSize() streaming.SizeInfo }); ok {
			sz := sizer.IndexSize()
			return ingestResp{info: fmt.Sprintf("entries=%d residuals=%d lists=%d tracked=%d", sz.PostingEntries, sz.Residuals, sz.Lists, sz.TrackedDims)}
		}
		return ingestResp{info: "unavailable"}
	case ingestWM:
		return s.serveWM(req)
	case ingestAdv:
		return s.serveAdv(req)
	case ingestMigrate:
		return s.serveMigrate(req)
	}
	if budget := s.srv.cfg.EntryBudget; budget > 0 && s.srv.totalEntries() >= int64(budget) {
		// The shared index budget is exhausted: refuse the item with the
		// same typed, retryable reply as a full queue. Entries expire as
		// the horizon moves, so BUSY is a backpressure signal here too.
		s.busy.Add(1)
		return ingestResp{busy: true}
	}
	start := time.Now()
	resp := s.serveAdd(req)
	s.hist.Observe(float64(time.Since(start)))
	return resp
}

// serveAdd ingests one item (ADD/ADDNOW/PUT semantics).
func (s *session) serveAdd(req ingestReq) ingestResp {
	t := req.t
	if req.stampNow {
		t = s.srv.cfg.Now()
		if s.begun && t < s.lastT {
			t = s.lastT // clamp clock regressions
		}
	} else if s.reo == nil && s.begun && t < s.lastT {
		return ingestResp{err: fmt.Errorf("out of order: t=%v after t=%v", t, s.lastT)}
	}
	id := s.nextID
	if req.explicitID {
		id = req.id
	}
	it := stream.Item{ID: id, Time: t, Side: req.side, Vec: req.v}
	if s.reo != nil {
		// The reorder stage owns admission: a late item is rejected with
		// the watermark it fell behind, an admissible one is buffered and
		// every buffered item the new watermark passed flows through the
		// joiner — with its matches written to THIS request's connection
		// (see the package comment on bounded lateness).
		if err := s.reo.Push(it, s.feed(req.emit)); err != nil {
			if isLate(err) {
				s.counters.LateDrops++
			}
			return ingestResp{err: err}
		}
	} else if err := s.feed(req.emit)(it); err != nil {
		return ingestResp{err: err}
	}
	if req.explicitID {
		// Keep auto-assigned IDs ahead of every caller-assigned one.
		if req.id+1 > s.nextID {
			s.nextID = req.id + 1
		}
	} else {
		s.nextID++
	}
	if !s.begun || t > s.lastT {
		s.lastT = t
	}
	s.begun = true
	return ingestResp{id: id}
}

// serveWM executes a WM heartbeat: the reorder stage's clocks advance
// to req.t (stale heartbeats are no-ops), released items flow through
// the joiner into the requester's connection, and the engine's own
// clock is advanced to the watermark so expiration and sweeping happen
// even on an idle stream.
func (s *session) serveWM(req ingestReq) ingestResp {
	if err := s.reo.AdvanceTo(req.t, s.feed(req.emit)); err != nil {
		return ingestResp{err: err}
	}
	wm := s.reo.Watermark()
	if !math.IsInf(wm, -1) {
		if adv, ok := s.joiner.(core.Advancer); ok {
			if err := adv.AdvanceTo(wm, req.emit); err != nil {
				return ingestResp{err: err}
			}
		}
	}
	// The heartbeat promises producer clocks reached req.t; keep ADDNOW's
	// clamp floor consistent with that promise.
	if !s.begun || req.t > s.lastT {
		s.lastT = req.t
		s.begun = true
	}
	return ingestResp{info: strconv.FormatFloat(wm, 'g', -1, 64)}
}

// serveAdv executes an ADV barrier: the joiner moves its stream clock
// to req.t — performing expiry, sweep maintenance, and (window modes)
// watermark-closed flushes — and later items behind the barrier are
// rejected like any time regression. A stale barrier is the joiner's
// no-op.
func (s *session) serveAdv(req ingestReq) ingestResp {
	adv, ok := s.joiner.(core.Advancer)
	if !ok {
		return ingestResp{err: errNoBarriers}
	}
	if err := adv.AdvanceTo(req.t, req.emit); err != nil {
		return ingestResp{err: err}
	}
	if !s.begun || req.t > s.lastT {
		s.lastT = req.t
		s.begun = true
	}
	return ingestResp{info: strconv.FormatFloat(req.t, 'g', -1, 64)}
}

// feed returns the joiner-facing release target for one request: each
// item flows through the joiner with its matches streaming into emit.
func (s *session) feed(emit apss.Sink) func(stream.Item) error {
	return func(it stream.Item) error {
		if s.sinkJoiner != nil && emit != nil {
			return s.sinkJoiner.AddTo(it, emit)
		}
		ms, err := s.joiner.Add(it)
		if err != nil {
			return err
		}
		if emit != nil {
			for _, m := range ms {
				emit(m)
			}
		}
		return nil
	}
}

// newSession builds, registers, and starts a session. mk overrides the
// joiner construction (the default session's Config.NewJoiner path and
// ADOPT's restore path); nil builds from the options. The server lock
// serializes registration, so two connections racing to create the same
// name see exactly one winner.
func (srv *Server) newSession(name string, opts SessionOptions, mk func(*session) error) (*session, error) {
	if err := validSessionName(name); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := &session{
		name:     name,
		srv:      srv,
		opts:     opts,
		reqs:     make(chan ingestReq, opts.Queue),
		pipeDone: make(chan struct{}),
	}
	if mk == nil {
		mk = func(s *session) error {
			p := apss.Params{Theta: opts.Theta, Lambda: opts.Lambda}
			var (
				j   core.Joiner
				err error
			)
			if hook := srv.cfg.NewSessionJoiner; hook != nil {
				j, err = hook(name, opts, &s.counters)
			} else {
				j, err = core.NewSTRFull(kindFor(opts.Index), p, streaming.Options{
					Counters: &s.counters,
					Workers:  opts.Workers,
					Foreign:  opts.Foreign,
					Shard:    opts.Shard,
					Adapt:    opts.adaptFor(),
				})
			}
			if err != nil {
				return err
			}
			s.joiner = j
			return nil
		}
	}
	if err := mk(s); err != nil {
		return nil, err
	}
	s.sinkJoiner, _ = s.joiner.(core.SinkJoiner)
	if s.reo == nil && opts.Lateness > 0 {
		if opts.Foreign {
			s.reo = stream.NewSidedReorder(opts.Lateness)
		} else {
			s.reo = stream.NewReorder(opts.Lateness)
		}
	}
	srv.mu.Lock()
	select {
	case <-srv.done:
		srv.mu.Unlock()
		return nil, errShutdown
	default:
	}
	if _, exists := srv.sessions[name]; exists {
		srv.mu.Unlock()
		return nil, fmt.Errorf("session %q already exists", name)
	}
	srv.sessions[name] = s
	srv.mu.Unlock()
	s.publish(true)
	go s.run()
	return s, nil
}

// lookupSession returns a registered session.
func (srv *Server) lookupSession(name string) (*session, bool) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	s, ok := srv.sessions[name]
	return s, ok
}

// sessionList returns the registered sessions sorted by name.
func (srv *Server) sessionList() []*session {
	srv.mu.Lock()
	out := make([]*session, 0, len(srv.sessions))
	for _, s := range srv.sessions {
		out = append(out, s)
	}
	srv.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// totalEntries sums the sessions' last-sampled live posting entries —
// the shared-arena occupancy the entry budget bounds. Sampled values
// lag by at most sizeSampleEvery items per session, which is the
// documented slack of the budget.
func (srv *Server) totalEntries() int64 {
	var total int64
	srv.mu.Lock()
	for _, s := range srv.sessions {
		total += s.liveEntries.Load()
	}
	srv.mu.Unlock()
	return total
}

// validSessionName enforces the protocol's session-name charset: one
// token of letters, digits, and [._-], so names never collide with
// option tokens or framing.
func validSessionName(name string) error {
	if name == "" {
		return fmt.Errorf("empty session name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("bad session name %q: want letters, digits, '.', '_', '-'", name)
		}
	}
	return nil
}
