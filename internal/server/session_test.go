package server

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"sssj/internal/apss"
	"sssj/internal/core"
	"sssj/internal/index/streaming"
	"sssj/internal/metrics"
	"sssj/internal/stream"
	"sssj/internal/vec"
)

// TestSessionLifecycle covers the SESSION verb: creation with options,
// duplicate refusal, bare-name attach, the sorted SESSIONS listing, and
// option/name validation errors that leave the connection usable.
func TestSessionLifecycle(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)

	if err := c.Session("ghost"); err == nil {
		t.Fatal("attach to a nonexistent session succeeded")
	}
	if err := c.Session("fast", "theta=0.9", "index=INV"); err != nil {
		t.Fatal(err)
	}
	c2 := dialT(t, s)
	if err := c2.Session("fast", "theta=0.5"); err == nil {
		t.Fatal("duplicate session creation succeeded")
	}
	if err := c2.Session("fast"); err != nil {
		t.Fatalf("bare-name attach: %v", err)
	}
	names, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"default", "fast"}) {
		t.Fatalf("SESSIONS = %v, want [default fast]", names)
	}
	for _, tc := range [][]string{
		{"bad", "theta=2"},                // invalid params
		{"bad", "nope=1"},                 // unknown key
		{"bad", "join=both"},              // bad enum
		{"bad", "shard=2/2"},              // out-of-range shard
		{"a/b", "theta=0.5"},              // bad name charset
		{"bad", "index=BOGUS"},            // unknown index
		{"bad", "lateness=-1"},            // negative δ
		{"bad", "shard=0/2", "workers=4"}, // shard excludes workers
	} {
		if err := c2.Session(tc[0], tc[1:]...); err == nil {
			t.Fatalf("SESSION %v accepted", tc)
		}
	}
	// The connection survives every rejection.
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionIsolation: sessions have independent thresholds, counters,
// and ID spaces — traffic on one never shows up in another.
func TestSessionIsolation(t *testing.T) {
	s := startServer(t, Config{})
	strict := dialT(t, s)
	if err := strict.Session("strict", "theta=0.95"); err != nil {
		t.Fatal(err)
	}
	loose := dialT(t, s) // stays on the default session (θ = 0.7)

	v1 := vec.MustNew([]uint32{1}, []float64{1})
	v2 := vec.MustNew([]uint32{1, 2}, []float64{2, 1}).Normalize() // sim(v1,v2) ≈ 0.894
	for _, c := range []*Client{strict, loose} {
		if _, ms, err := c.Add(0, v1); err != nil || len(ms) != 0 {
			t.Fatalf("first add: ms=%v err=%v", ms, err)
		}
	}
	if _, ms, err := strict.Add(0, v2); err != nil || len(ms) != 0 {
		t.Fatalf("θ=0.95 session matched sim≈0.894: %v (err=%v)", ms, err)
	}
	if _, ms, err := loose.Add(0, v2); err != nil || len(ms) != 1 {
		t.Fatalf("default session missed sim≈0.894: %v (err=%v)", ms, err)
	}
	// IDs restart per session: both sessions assigned 0 then 1.
	id, _, err := strict.Add(1, v1)
	if err != nil || id != 2 {
		t.Fatalf("strict id = %d err=%v, want 2", id, err)
	}
	// Counters are per session.
	st, err := strict.StatsJSON()
	if err != nil || st.Items != 3 {
		t.Fatalf("strict items = %d err=%v, want 3", st.Items, err)
	}
	lt, err := loose.StatsJSON()
	if err != nil || lt.Items != 2 {
		t.Fatalf("default items = %d err=%v, want 2", lt.Items, err)
	}
}

// TestSessionLatenessOption: lateness is a per-session capability — a
// δ > 0 session accepts WM and reorders, while the default session on
// the same server keeps the strict contract and rejects WM.
func TestSessionLatenessOption(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)
	if err := c.Session("late", "lateness=5"); err != nil {
		t.Fatal(err)
	}
	v := vec.MustNew([]uint32{1}, []float64{1})
	if _, _, err := c.Add(10, v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Add(7, v); err != nil { // within δ: buffered
		t.Fatal(err)
	}
	wm, ms, err := c.Watermark(20)
	if err != nil || wm != 15 {
		t.Fatalf("wm=%v err=%v, want 15", wm, err)
	}
	if len(ms) != 1 {
		t.Fatalf("released matches = %v, want 1", ms)
	}
	d := dialT(t, s)
	if _, _, err := d.Watermark(10); err == nil {
		t.Fatal("WM accepted on the strict default session")
	}
}

// gateJoiner wraps a real joiner with an entry signal and a release
// gate, simulating a session whose pipeline is stuck mid-item. The
// embedded interface deliberately hides AddTo, so the session falls
// back to the slice path and every item funnels through the gate.
type gateJoiner struct {
	core.Joiner
	entered chan struct{}
	gate    chan struct{}
}

func (g *gateJoiner) Add(it stream.Item) ([]apss.Match, error) {
	select {
	case g.entered <- struct{}{}: // signal the first arrival; later ones pass
	default:
	}
	<-g.gate
	return g.Joiner.Add(it)
}

// TestBackpressureContract pins the typed-backpressure contract: a
// session stuck behind a slow consumer answers BUSY once its bounded
// queue fills — immediately, without parking the submitting handler —
// while other sessions keep serving, and the refused item is retryable
// once the queue drains. Everything is deadline-based; nothing sleeps
// for correctness.
func TestBackpressureContract(t *testing.T) {
	gate := &gateJoiner{entered: make(chan struct{}), gate: make(chan struct{})}
	cfg := Config{
		NewSessionJoiner: func(name string, opts SessionOptions, c *metrics.Counters) (core.Joiner, error) {
			j, err := core.NewSTRFull(kindFor(opts.Index), apss.Params{Theta: opts.Theta, Lambda: opts.Lambda},
				streaming.Options{Counters: c})
			if err != nil {
				return nil, err
			}
			if name == "slow" {
				gate.Joiner = j
				return gate, nil
			}
			return j, nil
		},
	}
	s := startServer(t, cfg)
	v := vec.MustNew([]uint32{1}, []float64{1})

	slow1 := dialT(t, s)
	if err := slow1.Session("slow", "queue=1"); err != nil {
		t.Fatal(err)
	}
	slow2, slow3 := dialT(t, s), dialT(t, s)
	for _, c := range []*Client{slow2, slow3} {
		if err := c.Session("slow"); err != nil {
			t.Fatal(err)
		}
	}
	fast := dialT(t, s)
	if err := fast.Session("fast", "theta=0.7"); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	// First item: dequeued by the pipeline, stuck inside the joiner.
	res1 := make(chan error, 1)
	go func() { _, _, err := slow1.Add(1, v); res1 <- err }()
	select {
	case <-gate.entered:
	case <-deadline:
		t.Fatal("pipeline never reached the joiner")
	}
	// Second item: sits in the queue (capacity 1), handler parked.
	res2 := make(chan error, 1)
	go func() { _, _, err := slow2.Add(2, v); res2 <- err }()
	se, ok := s.lookupSession("slow")
	if !ok {
		t.Fatal("slow session missing")
	}
	for len(se.reqs) == 0 {
		select {
		case <-deadline:
			t.Fatal("second item never reached the queue")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Third item: the queue is full — the typed BUSY reply, immediately.
	_, _, err := slow3.Add(3, v)
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Session != "slow" || !errors.Is(err, ErrBusy) {
		t.Fatalf("queue-full add: err=%v, want *BusyError{slow}", err)
	}
	// The stalled session does not stall its neighbors: the fast session
	// serves a burst while slow is wedged.
	for i := 0; i < 50; i++ {
		if _, _, err := fast.Add(float64(i), v); err != nil {
			t.Fatalf("fast session stalled by slow one: %v", err)
		}
	}
	// Release the gate: both queued items complete, in submission order.
	close(gate.gate)
	for _, ch := range []chan error{res1, res2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("queued item never completed")
		}
	}
	// BUSY was backpressure, not failure: the retry lands.
	if id, _, err := slow3.Add(3, v); err != nil || id != 2 {
		t.Fatalf("retry after BUSY: id=%d err=%v, want id=2", id, err)
	}
	st, err := slow3.StatsJSON()
	if err != nil || st.Items != 3 {
		t.Fatalf("slow items = %d err=%v, want 3 (the refused item was not ingested)", st.Items, err)
	}
}

// TestEntryBudget: the shared posting-entry budget refuses ingest with
// the same typed BUSY reply as a full queue once the sampled occupancy
// reaches the bound.
func TestEntryBudget(t *testing.T) {
	s := startServer(t, Config{EntryBudget: 1})
	c := dialT(t, s)
	v := vec.MustNew([]uint32{1}, []float64{1})
	if _, _, err := c.Add(0, v); err != nil {
		t.Fatal(err)
	}
	// Occupancy is sampled; SIZE forces a fresh sample.
	if _, err := c.Size(); err != nil {
		t.Fatal(err)
	}
	_, _, err := c.Add(1, v)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("over-budget add: err=%v, want ErrBusy", err)
	}
}

// TestMetricsEndpoint scrapes /metrics and checks the families the
// DESIGN doc promises: per-session counters, queue gauges, sampled
// index/arena occupancy, the latency histogram, and the exposition
// content type.
func TestMetricsEndpoint(t *testing.T) {
	s := startServer(t, Config{})
	c := dialT(t, s)
	if err := c.Session("tenant", "theta=0.8"); err != nil {
		t.Fatal(err)
	}
	v := vec.MustNew([]uint32{1, 2}, []float64{1, 1}).Normalize()
	for i := 0; i < 3; i++ {
		if _, _, err := c.Add(float64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Size(); err != nil { // force an occupancy sample
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	s.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE sssj_items_total counter",
		`sssj_items_total{session="default"} 0`,
		`sssj_items_total{session="tenant"} 3`,
		`sssj_pairs_total{session="tenant"} 3`,
		`sssj_session_up{session="tenant"} 1`,
		`sssj_busy_total{session="tenant"} 0`,
		`sssj_ingest_queue_depth{session="tenant"} 0`,
		`sssj_ingest_queue_capacity{session="tenant"} 64`,
		`sssj_index_posting_entries{session="tenant"}`,
		`sssj_arena_blocks_live{session="tenant"}`,
		"# TYPE sssj_ingest_latency_seconds histogram",
		`sssj_ingest_latency_seconds_count{session="tenant"} 3`,
		`sssj_ingest_latency_seconds_bucket{session="tenant",le="+Inf"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape missing %q:\n%s", want, body)
		}
	}
}
