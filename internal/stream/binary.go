package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"sssj/internal/vec"
)

// Binary dataset format (little endian):
//
//	header:  8-byte magic "SSSJBIN1"
//	record:  float64 timestamp
//	         uint32  nnz
//	         nnz ×  (uint32 dim, float64 value)
//
// Records appear in stream order; IDs are assigned sequentially on read.
var binaryMagic = [8]byte{'S', 'S', 'S', 'J', 'B', 'I', 'N', '1'}

// ErrBadMagic is returned when a binary dataset has an unknown header.
var ErrBadMagic = errors.New("stream: bad binary dataset magic")

// maxBinaryNNZ bounds a single record so corrupted files cannot trigger
// huge allocations.
const maxBinaryNNZ = 1 << 24

// BinaryWriter writes items in the binary dataset format.
type BinaryWriter struct {
	w           *bufio.Writer
	wroteHeader bool
}

// NewBinaryWriter returns a BinaryWriter on w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriter(w)}
}

// Write appends one item.
func (bw *BinaryWriter) Write(it Item) error {
	if !bw.wroteHeader {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.wroteHeader = true
	}
	var buf [12]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(it.Time))
	binary.LittleEndian.PutUint32(buf[8:], uint32(it.Vec.NNZ()))
	if _, err := bw.w.Write(buf[:]); err != nil {
		return err
	}
	for i := range it.Vec.Dims {
		binary.LittleEndian.PutUint32(buf[:4], it.Vec.Dims[i])
		binary.LittleEndian.PutUint64(buf[4:], math.Float64bits(it.Vec.Vals[i]))
		if _, err := bw.w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output. An empty dataset still gets a header.
func (bw *BinaryWriter) Flush() error {
	if !bw.wroteHeader {
		if _, err := bw.w.Write(binaryMagic[:]); err != nil {
			return err
		}
		bw.wroteHeader = true
	}
	return bw.w.Flush()
}

// WriteBinary writes all items and flushes.
func WriteBinary(w io.Writer, items []Item) error {
	bw := NewBinaryWriter(w)
	for _, it := range items {
		if err := bw.Write(it); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryReader reads the binary dataset format as a Source.
type BinaryReader struct {
	r          *bufio.Reader
	nextID     uint64
	readHeader bool
}

// NewBinaryReader returns a BinaryReader on r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReader(r)}
}

// Next implements Source.
func (br *BinaryReader) Next() (Item, error) {
	if !br.readHeader {
		var magic [8]byte
		if _, err := io.ReadFull(br.r, magic[:]); err != nil {
			if err == io.EOF {
				return Item{}, io.ErrUnexpectedEOF
			}
			return Item{}, err
		}
		if magic != binaryMagic {
			return Item{}, ErrBadMagic
		}
		br.readHeader = true
	}
	var head [12]byte
	if _, err := io.ReadFull(br.r, head[:]); err != nil {
		if err == io.EOF {
			return Item{}, io.EOF // clean end between records
		}
		return Item{}, err
	}
	ts := math.Float64frombits(binary.LittleEndian.Uint64(head[:8]))
	nnz := binary.LittleEndian.Uint32(head[8:])
	if nnz > maxBinaryNNZ {
		return Item{}, fmt.Errorf("stream: record nnz %d exceeds limit", nnz)
	}
	dims := make([]uint32, nnz)
	vals := make([]float64, nnz)
	var buf [12]byte
	for i := uint32(0); i < nnz; i++ {
		if _, err := io.ReadFull(br.r, buf[:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Item{}, err
		}
		dims[i] = binary.LittleEndian.Uint32(buf[:4])
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[4:]))
	}
	v := vec.Vector{Dims: dims, Vals: vals}
	if err := v.Validate(); err != nil {
		return Item{}, fmt.Errorf("stream: record %d: %w", br.nextID, err)
	}
	it := Item{ID: br.nextID, Time: ts, Vec: v}
	br.nextID++
	return it, nil
}
