package stream

import (
	"container/heap"
	"io"

	"sssj/internal/apss"
)

// Merge combines multiple time-ordered sources into one time-ordered
// source (k-way merge). IDs are reassigned densely in output order so the
// merged stream looks like a single arrival sequence — merging feeds is
// how a production deployment would combine several upstream topics into
// one self-join input.
type Merge struct {
	h       mergeHeap
	nextID  uint64
	primed  bool
	lastErr error
}

// NewMerge returns a Source merging srcs by timestamp.
func NewMerge(srcs ...Source) *Merge {
	m := &Merge{}
	for _, s := range srcs {
		m.h = append(m.h, mergeCursor{src: s})
	}
	return m
}

type mergeCursor struct {
	src  Source
	head Item
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].head.Time < h[j].head.Time }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Next implements Source.
func (m *Merge) Next() (Item, error) {
	if m.lastErr != nil {
		return Item{}, m.lastErr
	}
	if !m.primed {
		live := m.h[:0]
		for _, c := range m.h {
			it, err := c.src.Next()
			if err == io.EOF {
				continue
			}
			if err != nil {
				m.lastErr = err
				return Item{}, err
			}
			c.head = it
			live = append(live, c)
		}
		m.h = live
		heap.Init(&m.h)
		m.primed = true
	}
	if len(m.h) == 0 {
		return Item{}, io.EOF
	}
	out := m.h[0].head
	it, err := m.h[0].src.Next()
	switch {
	case err == io.EOF:
		heap.Pop(&m.h)
	case err != nil:
		m.lastErr = err
		return Item{}, err
	default:
		m.h[0].head = it
		heap.Fix(&m.h, 0)
	}
	out.ID = m.nextID
	m.nextID++
	return out, nil
}

// SideTag wraps a source, stamping every item with a fixed side — the
// adapter that turns an ordinary single-stream source into one input of
// a two-stream (foreign) join.
type SideTag struct {
	Src  Source
	Side apss.Side
}

// Next implements Source.
func (t SideTag) Next() (Item, error) {
	it, err := t.Src.Next()
	if err != nil {
		return Item{}, err
	}
	it.Side = t.Side
	return it, nil
}

// MergeSides interleaves two time-ordered sources into one foreign-join
// input stream: a's items are tagged SideA, b's SideB, the interleave is
// by timestamp, and IDs are reassigned densely in merged arrival order
// (the package-wide ID convention; see Merge). Match IDs from a join
// over the result therefore index the merged stream.
func MergeSides(a, b Source) Source {
	return NewMerge(SideTag{Src: a, Side: apss.SideA}, SideTag{Src: b, Side: apss.SideB})
}

// TimeScale wraps a source, multiplying timestamps by Factor and shifting
// them by Offset. Scaling time is equivalent to scaling λ (the decayed
// similarity depends only on λ·Δt), which the harness uses to re-range a
// dataset's horizon sweep without regenerating it.
type TimeScale struct {
	Src    Source
	Factor float64
	Offset float64
}

// Next implements Source.
func (ts *TimeScale) Next() (Item, error) {
	it, err := ts.Src.Next()
	if err != nil {
		return Item{}, err
	}
	it.Time = it.Time*ts.Factor + ts.Offset
	return it, nil
}

// Limit wraps a source, yielding at most N items.
type Limit struct {
	Src Source
	N   int
}

// Next implements Source.
func (l *Limit) Next() (Item, error) {
	if l.N <= 0 {
		return Item{}, io.EOF
	}
	l.N--
	return l.Src.Next()
}

// Chan adapts a channel to a Source, for live pipelines feeding a join
// from a goroutine. The channel must be closed to end the stream.
type Chan struct{ C <-chan Item }

// Next implements Source.
func (c Chan) Next() (Item, error) {
	it, ok := <-c.C
	if !ok {
		return Item{}, io.EOF
	}
	return it, nil
}

// Func adapts a function to a Source.
type Func func() (Item, error)

// Next implements Source.
func (f Func) Next() (Item, error) { return f() }
