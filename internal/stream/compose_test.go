package stream

import (
	"errors"
	"io"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sssj/internal/vec"
)

func seqItems(times ...float64) []Item {
	items := make([]Item, len(times))
	for i, t := range times {
		items[i] = Item{ID: uint64(i), Time: t, Vec: vec.MustNew([]uint32{uint32(i + 1)}, []float64{1})}
	}
	return items
}

func TestMergeOrdersByTime(t *testing.T) {
	a := NewSliceSource(seqItems(1, 4, 9))
	b := NewSliceSource(seqItems(2, 3, 10))
	c := NewSliceSource(seqItems(0.5))
	merged, err := Collect(NewMerge(a, b, c))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 7 {
		t.Fatalf("merged %d items", len(merged))
	}
	for i, it := range merged {
		if it.ID != uint64(i) {
			t.Fatalf("ids not dense: %d at %d", it.ID, i)
		}
		if i > 0 && it.Time < merged[i-1].Time {
			t.Fatalf("order violated at %d", i)
		}
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	merged, err := Collect(NewMerge())
	if err != nil || len(merged) != 0 {
		t.Fatalf("empty merge: %v %v", merged, err)
	}
	merged, err = Collect(NewMerge(NewSliceSource(seqItems(1, 2))))
	if err != nil || len(merged) != 2 {
		t.Fatalf("single merge: %v %v", merged, err)
	}
	merged, err = Collect(NewMerge(NewSliceSource(nil), NewSliceSource(seqItems(3))))
	if err != nil || len(merged) != 1 {
		t.Fatalf("merge with empty source: %v %v", merged, err)
	}
}

type failingSource struct{ after int }

func (f *failingSource) Next() (Item, error) {
	if f.after <= 0 {
		return Item{}, errors.New("boom")
	}
	f.after--
	return Item{Time: float64(f.after)}, nil
}

func TestMergePropagatesErrors(t *testing.T) {
	m := NewMerge(&failingSource{after: 0})
	if _, err := m.Next(); err == nil || err == io.EOF {
		t.Fatalf("error not propagated: %v", err)
	}
	// subsequent calls keep failing
	if _, err := m.Next(); err == nil || err == io.EOF {
		t.Fatal("error not sticky")
	}
}

func TestQuickMergeEquivalentToSortedUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nSrc := 1 + r.Intn(4)
		var all []float64
		var srcs []Source
		for s := 0; s < nSrc; s++ {
			n := r.Intn(10)
			times := make([]float64, n)
			tm := 0.0
			for i := range times {
				tm += r.Float64()
				times[i] = tm
			}
			all = append(all, times...)
			srcs = append(srcs, NewSliceSource(seqItems(times...)))
		}
		merged, err := Collect(NewMerge(srcs...))
		if err != nil || len(merged) != len(all) {
			return false
		}
		sort.Float64s(all)
		for i := range all {
			if merged[i].Time != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeScale(t *testing.T) {
	src := &TimeScale{Src: NewSliceSource(seqItems(1, 2, 3)), Factor: 10, Offset: 5}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{15, 25, 35}
	for i := range want {
		if got[i].Time != want[i] {
			t.Fatalf("time[%d] = %v", i, got[i].Time)
		}
	}
}

func TestLimit(t *testing.T) {
	got, err := Collect(&Limit{Src: NewSliceSource(seqItems(1, 2, 3, 4)), N: 2})
	if err != nil || len(got) != 2 {
		t.Fatalf("limit: %v %v", got, err)
	}
	got, err = Collect(&Limit{Src: NewSliceSource(seqItems(1)), N: 0})
	if err != nil || len(got) != 0 {
		t.Fatalf("limit 0: %v %v", got, err)
	}
	// limit larger than the stream
	got, err = Collect(&Limit{Src: NewSliceSource(seqItems(1)), N: 10})
	if err != nil || len(got) != 1 {
		t.Fatalf("limit 10: %v %v", got, err)
	}
}

func TestChan(t *testing.T) {
	ch := make(chan Item, 3)
	for _, it := range seqItems(1, 2) {
		ch <- it
	}
	close(ch)
	got, err := Collect(Chan{C: ch})
	if err != nil || len(got) != 2 {
		t.Fatalf("chan: %v %v", got, err)
	}
}

func TestFunc(t *testing.T) {
	n := 0
	src := Func(func() (Item, error) {
		if n >= 3 {
			return Item{}, io.EOF
		}
		n++
		return Item{Time: float64(n)}, nil
	})
	got, err := Collect(src)
	if err != nil || len(got) != 3 {
		t.Fatalf("func: %v %v", got, err)
	}
}
