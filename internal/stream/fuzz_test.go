package stream

import (
	"bytes"
	"io"
	"testing"
)

// FuzzTextReader asserts the text parser never panics and that whatever
// it accepts round-trips through the writer.
func FuzzTextReader(f *testing.F) {
	f.Add("1.0 1:0.5 2:0.5\n")
	f.Add("# comment\n\n2 7:1\n")
	f.Add("nan 1:1\n")
	f.Add("1 1:1e308 2:1e308\n")
	f.Add("1 4294967295:1\n")
	f.Add("1 1:-1\n")
	f.Add("0 0:0\n")
	f.Fuzz(func(t *testing.T, input string) {
		items, err := Collect(NewTextReader(bytes.NewReader([]byte(input))))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, it := range items {
			if e := it.Vec.Validate(); e != nil {
				t.Fatalf("accepted invalid vector: %v", e)
			}
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, items); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := Collect(NewTextReader(&buf))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if len(again) != len(items) {
			t.Fatalf("round trip changed count: %d vs %d", len(again), len(items))
		}
	})
}

// FuzzBinaryReader asserts the binary parser is total: any byte string
// either parses into valid items or returns an error, without panics or
// unbounded allocation.
func FuzzBinaryReader(f *testing.F) {
	var seed bytes.Buffer
	items := []Item{mkItem(0, 1, []uint32{1, 5}, []float64{1, 2})}
	if err := WriteBinary(&seed, items); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("SSSJBIN1"))
	f.Add([]byte("SSSJBIN1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		r := NewBinaryReader(bytes.NewReader(input))
		for i := 0; i < 1000; i++ {
			it, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if e := it.Vec.Validate(); e != nil {
				t.Fatalf("accepted invalid vector: %v", e)
			}
		}
	})
}
