package stream

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sssj/internal/apss"
)

// This file is the event-time layer of the package: a bounded-lateness
// reorder buffer that turns an almost-ordered arrival stream back into
// the strictly time-ordered stream every join operator assumes.
//
// The contract is the standard watermark model. Items may arrive up to
// δ (the lateness bound) behind the newest event time seen so far; the
// buffer holds them, and releases items in (Time, ID) order once the
// watermark
//
//	W = maxEventTimeSeen − δ
//
// has passed them — at which point no item that could sort before them
// can still arrive without being late. W is monotone by construction,
// so the released sequence is a valid input for the strict-order
// operators downstream. An item behind W is late: it is rejected with a
// typed LateError and the buffer state does not change. δ = 0
// degenerates to the paper's strict contract — every item is released
// immediately and any regression is late — on a fast path that touches
// no heap at all.
//
// For the two-stream foreign join the buffer runs in sided mode: each
// side keeps its own clock and W = min(maxA, maxB) − δ, the classic
// min-of-inputs watermark. Until both sides have been seen W is −∞ and
// everything buffers (an unseen side could still deliver arbitrarily
// old items); Flush drains the buffer at end of stream.

// LateError reports an item that arrived behind the watermark and was
// not admitted. It unwraps to ErrOutOfOrder, so existing
// errors.Is(err, ErrOutOfOrder) checks keep working.
type LateError struct {
	ID        uint64  // the offending item
	Time      float64 // its event time
	Watermark float64 // the watermark it fell behind
}

// Error implements error.
func (e *LateError) Error() string {
	return fmt.Sprintf("stream: item %d at t=%v behind watermark t=%v", e.ID, e.Time, e.Watermark)
}

// Unwrap ties LateError to the package's ordering error.
func (e *LateError) Unwrap() error { return ErrOutOfOrder }

// Reorder is the bounded-lateness reorder buffer. The zero value is not
// usable; construct with NewReorder or NewSidedReorder. Like every
// stream operator, it is driven from one goroutine.
type Reorder struct {
	delta float64
	sided bool
	// Per-side arrival clocks. Non-sided mode uses index 0 only; sided
	// mode maps SideA → 0, SideB → 1.
	seen [2]bool
	maxT [2]float64
	buf  reorderHeap
}

// NewReorder returns a reorder buffer with lateness bound delta ≥ 0 and
// a single arrival clock. delta = 0 is the strict in-order contract.
func NewReorder(delta float64) *Reorder { return &Reorder{delta: delta} }

// NewSidedReorder returns a reorder buffer for a two-stream input: each
// Side keeps its own arrival clock and the watermark is the min of the
// two minus delta (it stays −∞ until both sides have been seen).
func NewSidedReorder(delta float64) *Reorder { return &Reorder{delta: delta, sided: true} }

// Lateness returns the lateness bound δ.
func (r *Reorder) Lateness() float64 { return r.delta }

// Sided reports whether the buffer keeps per-side clocks.
func (r *Reorder) Sided() bool { return r.sided }

// Len returns the number of items currently buffered.
func (r *Reorder) Len() int { return len(r.buf) }

// Watermark returns the current watermark W: every item with
// Time ≤ W has been released, and an arriving item with Time < W is
// late. It is −∞ before any input (for sided buffers: before both
// sides have been seen).
func (r *Reorder) Watermark() float64 {
	if r.sided {
		if !r.seen[0] || !r.seen[1] {
			return math.Inf(-1)
		}
		return math.Min(r.maxT[0], r.maxT[1]) - r.delta
	}
	if !r.seen[0] {
		return math.Inf(-1)
	}
	return r.maxT[0] - r.delta
}

// sideIdx maps an item to its clock.
func (r *Reorder) sideIdx(it Item) int {
	if r.sided && it.Side == apss.SideB {
		return 1
	}
	return 0
}

// observe advances the item's side clock.
func (r *Reorder) observe(si int, t float64) {
	if !r.seen[si] || t > r.maxT[si] {
		r.seen[si] = true
		r.maxT[si] = t
	}
}

// Push admits the next arrival. If it is behind the watermark, a
// *LateError is returned and nothing changes. Otherwise the item is
// buffered, the watermark advances, and every buffered item the new
// watermark has passed is released into emit in (Time, ID) order.
//
// If emit returns an error, the release stops there: the erroring item
// is consumed, the rest stay buffered, and the error is returned.
func (r *Reorder) Push(it Item, emit func(Item) error) error {
	if !r.sided && r.delta == 0 {
		// Fast path: with δ = 0 the watermark is the newest time seen,
		// nothing ever buffers, and admission is exactly the strict
		// in-order check.
		if r.seen[0] && it.Time < r.maxT[0] {
			return &LateError{ID: it.ID, Time: it.Time, Watermark: r.maxT[0]}
		}
		r.seen[0] = true
		r.maxT[0] = it.Time
		return emit(it)
	}
	// A late item never advances a clock (its time is behind the
	// watermark, hence behind its side's max), so observing first is
	// equivalent to checking first — and an item can never be made late
	// by its own observation (t ≥ maxT[side] − δ ≥ W after it).
	r.observe(r.sideIdx(it), it.Time)
	w := r.Watermark()
	if it.Time < w {
		return &LateError{ID: it.ID, Time: it.Time, Watermark: w}
	}
	heap.Push(&r.buf, it)
	return r.release(w, emit)
}

// AdvanceTo observes an external stream-clock heartbeat: a promise that
// every side's arrival clock has reached t, without an item to process.
// Clocks only move forward (a stale heartbeat is a no-op), the
// watermark advances to at least t − δ, and newly passed items are
// released into emit in (Time, ID) order.
func (r *Reorder) AdvanceTo(t float64, emit func(Item) error) error {
	n := 1
	if r.sided {
		n = 2
	}
	for i := 0; i < n; i++ {
		r.observe(i, t)
	}
	return r.release(r.Watermark(), emit)
}

// release pops and emits every buffered item with Time ≤ w.
func (r *Reorder) release(w float64, emit func(Item) error) error {
	for len(r.buf) > 0 && r.buf[0].Time <= w {
		it := heap.Pop(&r.buf).(Item)
		if err := emit(it); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains every buffered item into emit in (Time, ID) order — the
// end-of-stream release, when no more arrivals can fill the gap the
// watermark was waiting on. The clocks are unchanged, so a post-Flush
// Push still enforces the same lateness bound.
func (r *Reorder) Flush(emit func(Item) error) error {
	for len(r.buf) > 0 {
		it := heap.Pop(&r.buf).(Item)
		if err := emit(it); err != nil {
			return err
		}
	}
	return nil
}

// ReorderState is the serializable snapshot of a Reorder, the
// event-time section of checkpoint format v5. Buffered is sorted by
// (Time, ID).
type ReorderState struct {
	Delta    float64
	Sided    bool
	Seen     [2]bool
	MaxT     [2]float64
	Buffered []Item
}

// State snapshots the buffer. The returned items are copies of the
// buffered headers; vectors are shared.
func (r *Reorder) State() ReorderState {
	st := ReorderState{Delta: r.delta, Sided: r.sided, Seen: r.seen, MaxT: r.maxT}
	st.Buffered = append([]Item(nil), r.buf...)
	sort.Slice(st.Buffered, func(a, b int) bool {
		if st.Buffered[a].Time != st.Buffered[b].Time {
			return st.Buffered[a].Time < st.Buffered[b].Time
		}
		return st.Buffered[a].ID < st.Buffered[b].ID
	})
	return st
}

// RestoreReorder rebuilds a Reorder from a snapshot.
func RestoreReorder(st ReorderState) *Reorder {
	r := &Reorder{delta: st.Delta, sided: st.Sided, seen: st.Seen, maxT: st.MaxT}
	r.buf = append(r.buf, st.Buffered...)
	heap.Init(&r.buf)
	return r
}

// reorderHeap is a min-heap of items ordered by (Time, ID).
type reorderHeap []Item

func (h reorderHeap) Len() int { return len(h) }
func (h reorderHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].ID < h[j].ID
}
func (h reorderHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *reorderHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *reorderHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ShuffleWithin returns a deterministic within-δ perturbation of a
// time-sorted stream: the one stream-disorder generator shared by the
// oracle tests, the fuzz targets, and the perf harness.
//
// Each item i is assigned the jitter key k_i = t_i + u_i with u_i drawn
// uniformly from [0, δ] by a seeded generator, and the items are
// stable-sorted by key. The result is always admissible under lateness
// δ: if item y precedes item x in the shuffle then k_y ≤ k_x, so
// t_y ≤ k_y ≤ k_x ≤ t_x + δ — no item ever ends up more than δ behind
// a later-arriving time, hence a Reorder with the same δ drops nothing
// and re-sorting by (Time, ID) restores the input exactly. δ ≤ 0
// returns a copy of the input unchanged.
func ShuffleWithin(items []Item, delta float64, seed int64) []Item {
	out := append([]Item(nil), items...)
	if delta <= 0 || len(out) < 2 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	keys := make([]float64, len(out))
	for i, it := range out {
		keys[i] = it.Time + rng.Float64()*delta
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	shuffled := make([]Item, len(out))
	for i, j := range idx {
		shuffled[i] = out[j]
	}
	return shuffled
}
