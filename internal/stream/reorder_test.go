package stream

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sssj/internal/apss"
)

// collect returns an emit func appending to *dst.
func collectItems(dst *[]Item) func(Item) error {
	return func(it Item) error {
		*dst = append(*dst, it)
		return nil
	}
}

func TestReorderZeroDeltaIsStrictOrder(t *testing.T) {
	r := NewReorder(0)
	var out []Item
	emit := collectItems(&out)
	for i, tm := range []float64{1, 2, 2, 5} {
		if err := r.Push(Item{ID: uint64(i), Time: tm}, emit); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if len(out) != 4 {
		t.Fatalf("δ=0 must release immediately, got %d of 4", len(out))
	}
	if r.Len() != 0 {
		t.Fatalf("δ=0 must buffer nothing, Len=%d", r.Len())
	}
	err := r.Push(Item{ID: 9, Time: 4}, emit)
	var le *LateError
	if !errors.As(err, &le) {
		t.Fatalf("regression: want *LateError, got %v", err)
	}
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("LateError must unwrap to ErrOutOfOrder")
	}
	if le.ID != 9 || le.Time != 4 || le.Watermark != 5 {
		t.Fatalf("bad LateError fields: %+v", le)
	}
	if w := r.Watermark(); w != 5 {
		t.Fatalf("watermark after t=5: got %v", w)
	}
}

func TestReorderReleasesSortedWithinDelta(t *testing.T) {
	// Arrival order is shuffled within δ=3; releases must come out in
	// (Time, ID) order and cover everything after Flush.
	arrivals := []Item{
		{ID: 0, Time: 2}, {ID: 1, Time: 0}, {ID: 2, Time: 3},
		{ID: 3, Time: 1}, {ID: 4, Time: 6}, {ID: 5, Time: 4},
		{ID: 6, Time: 6}, {ID: 7, Time: 9},
	}
	r := NewReorder(3)
	var out []Item
	emit := collectItems(&out)
	for _, it := range arrivals {
		if err := r.Push(it, emit); err != nil {
			t.Fatalf("push %d: %v", it.ID, err)
		}
	}
	if err := r.Flush(emit); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(out) != len(arrivals) {
		t.Fatalf("released %d of %d", len(out), len(arrivals))
	}
	for i := 1; i < len(out); i++ {
		a, b := out[i-1], out[i]
		if a.Time > b.Time || (a.Time == b.Time && a.ID > b.ID) {
			t.Fatalf("release out of order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestReorderDropsLateItem(t *testing.T) {
	r := NewReorder(2)
	var out []Item
	emit := collectItems(&out)
	for _, it := range []Item{{ID: 0, Time: 0}, {ID: 1, Time: 10}} {
		if err := r.Push(it, emit); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	// Watermark is 10-2=8; t=5 is late.
	before := r.Len()
	err := r.Push(Item{ID: 2, Time: 5}, emit)
	var le *LateError
	if !errors.As(err, &le) {
		t.Fatalf("want *LateError, got %v", err)
	}
	if le.Watermark != 8 || le.Time != 5 || le.ID != 2 {
		t.Fatalf("bad LateError: %+v", le)
	}
	if r.Len() != before {
		t.Fatalf("late item must not change the buffer")
	}
	// t=8 equals the watermark: not late (late means strictly behind).
	if err := r.Push(Item{ID: 3, Time: 8}, emit); err != nil {
		t.Fatalf("t=watermark must be admitted: %v", err)
	}
}

func TestSidedReorderMinOfSides(t *testing.T) {
	r := NewSidedReorder(1)
	if !math.IsInf(r.Watermark(), -1) {
		t.Fatalf("empty sided watermark must be -Inf")
	}
	var out []Item
	emit := collectItems(&out)
	// Only side A seen: watermark stays -Inf, everything buffers.
	for i, tm := range []float64{1, 5, 9} {
		if err := r.Push(Item{ID: uint64(i), Time: tm, Side: apss.SideA}, emit); err != nil {
			t.Fatalf("push A: %v", err)
		}
	}
	if len(out) != 0 || !math.IsInf(r.Watermark(), -1) {
		t.Fatalf("one-sided input must stall: released=%d W=%v", len(out), r.Watermark())
	}
	// First B item at t=6: W = min(9, 6) - 1 = 5 → releases t=1 and t=5.
	if err := r.Push(Item{ID: 10, Time: 6, Side: apss.SideB}, emit); err != nil {
		t.Fatalf("push B: %v", err)
	}
	if w := r.Watermark(); w != 5 {
		t.Fatalf("watermark: got %v want 5", w)
	}
	if len(out) != 2 || out[0].Time != 1 || out[1].Time != 5 {
		t.Fatalf("releases after B: %+v", out)
	}
	// An A item behind W is late even though side A's clock is ahead.
	if err := r.Push(Item{ID: 11, Time: 4, Side: apss.SideA}, emit); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("late A item: got %v", err)
	}
	if err := r.Flush(emit); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if len(out) != 4 {
		t.Fatalf("flush must drain the rest, got %d", len(out))
	}
}

func TestReorderAdvanceTo(t *testing.T) {
	r := NewReorder(2)
	var out []Item
	emit := collectItems(&out)
	if err := r.Push(Item{ID: 0, Time: 3}, emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("t=3 must wait for W ≥ 3")
	}
	if err := r.AdvanceTo(7, emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || r.Watermark() != 5 {
		t.Fatalf("heartbeat at 7: released=%d W=%v", len(out), r.Watermark())
	}
	// Stale heartbeats never regress the clock.
	if err := r.AdvanceTo(1, emit); err != nil {
		t.Fatal(err)
	}
	if r.Watermark() != 5 {
		t.Fatalf("stale heartbeat moved the watermark to %v", r.Watermark())
	}
}

func TestShuffleWithinIsAdmissibleAndLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		items := make([]Item, n)
		tm := 0.0
		for i := range items {
			tm += rng.Float64() * 3
			items[i] = Item{ID: uint64(i), Time: tm}
		}
		delta := rng.Float64() * 10
		shuffled := ShuffleWithin(items, delta, int64(trial))
		r := NewReorder(delta)
		var out []Item
		emit := collectItems(&out)
		for _, it := range shuffled {
			if err := r.Push(it, emit); err != nil {
				t.Fatalf("trial %d: admissible shuffle produced a late item: %v", trial, err)
			}
		}
		if err := r.Flush(emit); err != nil {
			t.Fatalf("trial %d: flush: %v", trial, err)
		}
		if !reflect.DeepEqual(out, items) {
			t.Fatalf("trial %d: reorder(shuffle) != identity", trial)
		}
	}
}

func TestShuffleWithinDeterministic(t *testing.T) {
	items := make([]Item, 40)
	for i := range items {
		items[i] = Item{ID: uint64(i), Time: float64(i)}
	}
	a := ShuffleWithin(items, 5, 42)
	b := ShuffleWithin(items, 5, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must give the same shuffle")
	}
	c := ShuffleWithin(items, 5, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should perturb differently")
	}
	if got := ShuffleWithin(items, 0, 42); !reflect.DeepEqual(got, items) {
		t.Fatal("δ=0 shuffle must be the identity")
	}
}

func TestReorderStateRoundTrip(t *testing.T) {
	arrivals := []Item{
		{ID: 0, Time: 2}, {ID: 1, Time: 0}, {ID: 2, Time: 7},
		{ID: 3, Time: 5}, {ID: 4, Time: 9}, {ID: 5, Time: 8},
	}
	run := func(split int) []Item {
		r := NewReorder(4)
		var out []Item
		emit := collectItems(&out)
		for i, it := range arrivals {
			if i == split {
				r = RestoreReorder(r.State())
			}
			if err := r.Push(it, emit); err != nil {
				t.Fatalf("push: %v", err)
			}
		}
		if err := r.Flush(emit); err != nil {
			t.Fatalf("flush: %v", err)
		}
		return out
	}
	want := run(-1)
	for split := 0; split <= len(arrivals); split++ {
		if got := run(split); !reflect.DeepEqual(got, want) {
			t.Fatalf("split %d: state round-trip changed the release sequence", split)
		}
	}
}
