// Package stream defines the timestamped-vector stream abstraction of the
// SSSJ problem, plus dataset readers and writers.
//
// A stream S = <(x_i, t(x_i)), ...> delivers unit-normalized sparse vectors
// in non-decreasing timestamp order. Two on-disk formats are supported,
// mirroring the paper's setup (§7: "datasets are available in text format,
// while for the experiments we use a more compact and faster-to-read binary
// format; the text-to-binary converter is also included"):
//
//   - Text: one item per line, "<timestamp> <dim>:<val> <dim>:<val> ...".
//   - Binary: little-endian records with a magic header (see binary.go).
package stream

import (
	"errors"
	"fmt"
	"io"

	"sssj/internal/apss"
	"sssj/internal/vec"
)

// Item is a timestamped vector in the stream. ID is a dense sequence number
// assigned in arrival order (the ι(x) reference of the paper).
//
// Side tags the item's input stream for the two-stream (foreign) join
// extension; the self-join operators ignore it, and the zero value keeps
// every untagged item on side A. It is an operator-level tag: the
// on-disk dataset formats do not carry it.
type Item struct {
	ID   uint64
	Time float64
	Side apss.Side
	Vec  vec.Vector
}

// ErrOutOfOrder is returned by readers and validators when timestamps
// decrease.
var ErrOutOfOrder = errors.New("stream: timestamps out of order")

// Source yields stream items in arrival order. Next returns io.EOF after
// the last item.
type Source interface {
	Next() (Item, error)
}

// SliceSource serves items from an in-memory slice.
type SliceSource struct {
	items []Item
	pos   int
}

// NewSliceSource returns a Source over items. The slice is not copied.
func NewSliceSource(items []Item) *SliceSource {
	return &SliceSource{items: items}
}

// Next implements Source.
func (s *SliceSource) Next() (Item, error) {
	if s.pos >= len(s.items) {
		return Item{}, io.EOF
	}
	it := s.items[s.pos]
	s.pos++
	return it, nil
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains a source into a slice.
func Collect(s Source) ([]Item, error) {
	var out []Item
	for {
		it, err := s.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, it)
	}
}

// Validate checks that items are ID-dense from firstID, time-ordered, and
// hold unit vectors (within eps). It is used by tests and by readers in
// strict mode.
func Validate(items []Item, eps float64) error {
	prev := -1.0
	for i, it := range items {
		if err := it.Vec.Validate(); err != nil {
			return fmt.Errorf("stream: item %d: %w", i, err)
		}
		if it.Time < prev {
			return fmt.Errorf("%w: item %d at t=%v after t=%v", ErrOutOfOrder, i, it.Time, prev)
		}
		prev = it.Time
		if !it.Vec.IsEmpty() && !it.Vec.IsUnit(eps) {
			return fmt.Errorf("stream: item %d not unit-normalized (norm=%v)", i, it.Vec.Norm())
		}
	}
	return nil
}

// Stats summarizes a dataset the way Table 1 of the paper does.
type Stats struct {
	N        int     // number of vectors
	M        uint32  // dimensionality (max dim + 1)
	NNZ      int64   // total non-zero coordinates
	Density  float64 // NNZ / (N*M)
	AvgNNZ   float64 // NNZ / N
	Duration float64 // t(last) - t(first)
}

// ComputeStats scans items and returns Table 1-style statistics.
func ComputeStats(items []Item) Stats {
	var st Stats
	st.N = len(items)
	for _, it := range items {
		st.NNZ += int64(it.Vec.NNZ())
		if d := it.Vec.MaxDim(); d > st.M {
			st.M = d
		}
	}
	if st.N > 0 {
		st.AvgNNZ = float64(st.NNZ) / float64(st.N)
		st.Duration = items[st.N-1].Time - items[0].Time
		if st.M > 0 {
			st.Density = float64(st.NNZ) / (float64(st.N) * float64(st.M))
		}
	}
	return st
}
