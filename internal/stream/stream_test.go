package stream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sssj/internal/vec"
)

func mkItem(id uint64, t float64, dims []uint32, vals []float64) Item {
	return Item{ID: id, Time: t, Vec: vec.MustNew(dims, vals).Normalize()}
}

func TestSliceSource(t *testing.T) {
	items := []Item{
		mkItem(0, 1, []uint32{1}, []float64{1}),
		mkItem(1, 2, []uint32{2}, []float64{1}),
	}
	s := NewSliceSource(items)
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("collect = %+v", got)
	}
	if _, err := s.Next(); err != io.EOF {
		t.Fatalf("want EOF got %v", err)
	}
	s.Reset()
	if it, err := s.Next(); err != nil || it.ID != 0 {
		t.Fatal("reset failed")
	}
}

func TestTextRoundTrip(t *testing.T) {
	items := []Item{
		mkItem(0, 0.5, []uint32{3, 7}, []float64{1, 2}),
		mkItem(1, 1.25, []uint32{1}, []float64{4}),
		mkItem(2, 9, []uint32{0, 2, 5}, []float64{0.1, 0.2, 0.3}),
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, items); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewTextReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items", len(got))
	}
	for i := range items {
		if got[i].Time != items[i].Time {
			t.Fatalf("item %d time %v != %v", i, got[i].Time, items[i].Time)
		}
		if !got[i].Vec.IsUnit(1e-9) {
			t.Fatalf("item %d not normalized", i)
		}
		if vec.Dot(got[i].Vec, items[i].Vec) < 1-1e-9 {
			t.Fatalf("item %d direction changed", i)
		}
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1.0 2:0.5\n   \n# more\n2.0 3:1\n"
	got, err := Collect(NewTextReader(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d items", len(got))
	}
}

func TestTextMalformed(t *testing.T) {
	cases := []string{
		"notanumber 1:1\n",
		"1.0 xx\n",
		"1.0 1:\n",
		"1.0 :5\n",
		"1.0 a:5\n",
		"1.0 1:b\n",
		"1.0 -3:1\n",
	}
	for _, in := range cases {
		if _, err := Collect(NewTextReader(strings.NewReader(in))); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestTextStrictOrdering(t *testing.T) {
	in := "2.0 1:1\n1.0 2:1\n"
	tr := NewTextReader(strings.NewReader(in))
	tr.Strict = true
	_, err := Collect(tr)
	if !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder got %v", err)
	}
	// non-strict accepts it
	if _, err := Collect(NewTextReader(strings.NewReader(in))); err != nil {
		t.Fatalf("non-strict rejected: %v", err)
	}
}

func TestTextRawValues(t *testing.T) {
	tr := NewTextReader(strings.NewReader("1.0 1:3 2:4\n"))
	tr.RawValues = true
	got, err := Collect(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Vec.Norm() != 5 {
		t.Fatalf("raw norm = %v", got[0].Vec.Norm())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	items := []Item{
		mkItem(0, 0.5, []uint32{3, 7}, []float64{1, 2}),
		{ID: 1, Time: 1.5, Vec: vec.Vector{}}, // empty vector is legal
		mkItem(2, 2.75, []uint32{0, 9, 100000}, []float64{0.5, 0.25, 0.8}),
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, items); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("got %d items", len(got))
	}
	for i := range items {
		if got[i].Time != items[i].Time || !vec.Equal(got[i].Vec, items[i].Vec) {
			t.Fatalf("item %d mismatch: %+v vs %+v", i, got[i], items[i])
		}
		if got[i].ID != uint64(i) {
			t.Fatalf("item %d id = %d", i, got[i].ID)
		}
	}
}

func TestBinaryEmptyDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewBinaryReader(&buf))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty dataset: %v %v", got, err)
	}
}

func TestBinaryFailureInjection(t *testing.T) {
	// bad magic
	_, err := Collect(NewBinaryReader(strings.NewReader("WRONGMAGIC")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	// truncated header
	_, err = Collect(NewBinaryReader(strings.NewReader("SSSJ")))
	if err == nil {
		t.Fatal("truncated magic accepted")
	}
	// truncated record
	items := []Item{mkItem(0, 1, []uint32{1, 2}, []float64{1, 1})}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, items); err != nil {
		t.Fatal(err)
	}
	for cut := buf.Len() - 1; cut > 8; cut -= 5 {
		_, err := Collect(NewBinaryReader(bytes.NewReader(buf.Bytes()[:cut])))
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// oversized nnz claim
	bad := append([]byte{}, buf.Bytes()[:16]...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff) // nnz = 2^32-1
	_, err = Collect(NewBinaryReader(bytes.NewReader(bad)))
	if err == nil {
		t.Fatal("oversized nnz accepted")
	}
}

func TestValidate(t *testing.T) {
	good := []Item{
		mkItem(0, 1, []uint32{1}, []float64{1}),
		mkItem(1, 2, []uint32{2}, []float64{1}),
	}
	if err := Validate(good, 1e-9); err != nil {
		t.Fatal(err)
	}
	unordered := []Item{good[1], good[0]}
	unordered[0].Time, unordered[1].Time = 5, 1
	if err := Validate(unordered, 1e-9); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("want ErrOutOfOrder got %v", err)
	}
	nonUnit := []Item{{Time: 1, Vec: vec.MustNew([]uint32{1}, []float64{2})}}
	if err := Validate(nonUnit, 1e-9); err == nil {
		t.Fatal("non-unit accepted")
	}
}

func TestComputeStats(t *testing.T) {
	items := []Item{
		mkItem(0, 10, []uint32{0, 4}, []float64{1, 1}),
		mkItem(1, 30, []uint32{9}, []float64{1}),
	}
	st := ComputeStats(items)
	if st.N != 2 || st.M != 10 || st.NNZ != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgNNZ != 1.5 || st.Duration != 20 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Density != 3.0/20.0 {
		t.Fatalf("density = %v", st.Density)
	}
	if ComputeStats(nil).N != 0 {
		t.Fatal("empty stats")
	}
}

func randomItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	tm := 0.0
	for i := range items {
		tm += r.Float64()
		nnz := 1 + r.Intn(8)
		m := map[uint32]float64{}
		for j := 0; j < nnz; j++ {
			m[uint32(r.Intn(64))] = r.Float64() + 0.05
		}
		items[i] = Item{ID: uint64(i), Time: tm, Vec: vec.FromMap(m).Normalize()}
	}
	return items
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randomItems(r, 1+r.Intn(30))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, items); err != nil {
			return false
		}
		got, err := Collect(NewBinaryReader(&buf))
		if err != nil || len(got) != len(items) {
			return false
		}
		for i := range items {
			if got[i].Time != items[i].Time || !vec.Equal(got[i].Vec, items[i].Vec) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTextRoundTripDirection(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randomItems(r, 1+r.Intn(20))
		var buf bytes.Buffer
		if err := WriteText(&buf, items); err != nil {
			return false
		}
		got, err := Collect(NewTextReader(&buf))
		if err != nil || len(got) != len(items) {
			return false
		}
		for i := range items {
			if vec.Dot(got[i].Vec, items[i].Vec) < 1-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
