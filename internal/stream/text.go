package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sssj/internal/vec"
)

// TextReader parses the text dataset format: one item per line,
//
//	<timestamp> <dim>:<val> <dim>:<val> ...
//
// Blank lines and lines starting with '#' are skipped. Vectors are
// normalized to unit length on read unless RawValues is set.
type TextReader struct {
	sc        *bufio.Scanner
	nextID    uint64
	line      int
	prevTime  float64
	started   bool
	RawValues bool // keep values as-is instead of L2-normalizing
	Strict    bool // reject out-of-order timestamps
}

// NewTextReader returns a TextReader over r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	return &TextReader{sc: sc}
}

// Next implements Source.
func (tr *TextReader) Next() (Item, error) {
	for tr.sc.Scan() {
		tr.line++
		text := strings.TrimSpace(tr.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		it, err := tr.parseLine(text)
		if err != nil {
			return Item{}, fmt.Errorf("stream: line %d: %w", tr.line, err)
		}
		if tr.Strict && tr.started && it.Time < tr.prevTime {
			return Item{}, fmt.Errorf("stream: line %d: %w", tr.line, ErrOutOfOrder)
		}
		tr.prevTime = it.Time
		tr.started = true
		return it, nil
	}
	if err := tr.sc.Err(); err != nil {
		return Item{}, err
	}
	return Item{}, io.EOF
}

func (tr *TextReader) parseLine(text string) (Item, error) {
	fields := strings.Fields(text)
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return Item{}, fmt.Errorf("bad timestamp %q: %w", fields[0], err)
	}
	dims := make([]uint32, 0, len(fields)-1)
	vals := make([]float64, 0, len(fields)-1)
	for _, f := range fields[1:] {
		colon := strings.IndexByte(f, ':')
		if colon <= 0 || colon == len(f)-1 {
			return Item{}, fmt.Errorf("bad coordinate %q", f)
		}
		d, err := strconv.ParseUint(f[:colon], 10, 32)
		if err != nil {
			return Item{}, fmt.Errorf("bad dimension %q: %w", f[:colon], err)
		}
		v, err := strconv.ParseFloat(f[colon+1:], 64)
		if err != nil {
			return Item{}, fmt.Errorf("bad value %q: %w", f[colon+1:], err)
		}
		dims = append(dims, uint32(d))
		vals = append(vals, v)
	}
	v, err := vec.New(dims, vals)
	if err != nil {
		return Item{}, err
	}
	if !tr.RawValues {
		v = v.Normalize()
	}
	it := Item{ID: tr.nextID, Time: ts, Vec: v}
	tr.nextID++
	return it, nil
}

// WriteText writes items in the text format.
func WriteText(w io.Writer, items []Item) error {
	bw := bufio.NewWriter(w)
	for _, it := range items {
		if _, err := fmt.Fprintf(bw, "%g", it.Time); err != nil {
			return err
		}
		for i := range it.Vec.Dims {
			if _, err := fmt.Fprintf(bw, " %d:%g", it.Vec.Dims[i], it.Vec.Vals[i]); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
