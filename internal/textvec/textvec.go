// Package textvec turns text documents into unit-normalized sparse
// vectors via the hashing trick, the representation the paper's motivating
// applications (trend detection and near-duplicate filtering over
// microblog posts, §1) operate on.
//
// Tokenization is deliberately simple — lowercase, split on
// non-alphanumerics, drop one-character tokens — and each token is hashed
// into a fixed-size dimension space with FNV-1a. Weights are term
// frequency, optionally scaled by an online inverse document frequency
// computed over the documents seen so far (a streaming-friendly IDF: no
// second pass over the corpus is possible on a stream).
package textvec

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"

	"sssj/internal/vec"
)

// Vectorizer converts documents to sparse unit vectors. The zero value is
// not usable; call New.
type Vectorizer struct {
	dims   uint32
	useIDF bool
	n      int            // documents seen
	df     map[uint32]int // document frequency per hashed dimension
}

// New returns a Vectorizer hashing into dims dimensions. useIDF enables
// online TF-IDF weighting; with it off, weights are plain term frequency.
func New(dims uint32, useIDF bool) *Vectorizer {
	if dims == 0 {
		panic("textvec: dims must be positive")
	}
	v := &Vectorizer{dims: dims, useIDF: useIDF}
	if useIDF {
		v.df = make(map[uint32]int)
	}
	return v
}

// Dims returns the hash-space size.
func (z *Vectorizer) Dims() uint32 { return z.dims }

// Docs returns the number of documents vectorized so far.
func (z *Vectorizer) Docs() int { return z.n }

// Tokenize lowercases text and splits it on non-alphanumeric runes,
// dropping one-character tokens.
func Tokenize(text string) []string {
	raw := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '#' && r != '@'
	})
	out := raw[:0]
	for _, tok := range raw {
		if len(tok) > 1 {
			out = append(out, tok)
		}
	}
	return out
}

// HashToken maps a token to a dimension with FNV-1a.
func (z *Vectorizer) HashToken(tok string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(tok))
	return h.Sum32() % z.dims
}

// Vectorize converts one document into a unit vector and, when IDF is
// enabled, folds the document into the running statistics. An empty or
// token-free document yields an empty vector.
func (z *Vectorizer) Vectorize(text string) vec.Vector {
	toks := Tokenize(text)
	if len(toks) == 0 {
		return vec.Vector{}
	}
	tf := make(map[uint32]float64, len(toks))
	for _, tok := range toks {
		tf[z.HashToken(tok)]++
	}
	if z.useIDF {
		z.n++
		for d := range tf {
			z.df[d]++
		}
		for d, f := range tf {
			// Smoothed IDF over the stream seen so far.
			tf[d] = f * math.Log(float64(1+z.n)/float64(1+z.df[d]))
		}
	}
	v := vec.FromMap(tf).Normalize()
	return v
}
