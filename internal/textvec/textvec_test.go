package textvec

import (
	"testing"

	"sssj/internal/vec"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("Hello, World! #trending @user a I 42x")
	want := []string{"hello", "world", "#trending", "@user", "42x"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v want %v", toks, want)
		}
	}
	if len(Tokenize("")) != 0 || len(Tokenize("  , . !")) != 0 {
		t.Fatal("empty inputs should yield no tokens")
	}
}

func TestVectorizeUnitAndDeterministic(t *testing.T) {
	z := New(1<<16, false)
	v1 := z.Vectorize("the quick brown fox")
	v2 := z.Vectorize("the quick brown fox")
	if !v1.IsUnit(1e-9) {
		t.Fatalf("norm = %v", v1.Norm())
	}
	if !vec.Equal(v1, v2) {
		t.Fatal("same text produced different vectors")
	}
	if !(z.Vectorize("").IsEmpty()) {
		t.Fatal("empty doc should vectorize to empty")
	}
}

func TestSimilarTextsAreSimilarVectors(t *testing.T) {
	z := New(1<<16, false)
	a := z.Vectorize("breaking news earthquake hits city downtown")
	b := z.Vectorize("breaking news earthquake strikes city downtown")
	c := z.Vectorize("cooking recipe chocolate cake butter sugar")
	if vec.Dot(a, b) < 0.6 {
		t.Fatalf("near-duplicates dissimilar: %v", vec.Dot(a, b))
	}
	if vec.Dot(a, c) > 0.3 {
		t.Fatalf("unrelated docs similar: %v", vec.Dot(a, c))
	}
}

func TestTermFrequencyCounts(t *testing.T) {
	z := New(1<<16, false)
	v := z.Vectorize("spam spam spam ham")
	spam := z.HashToken("spam")
	ham := z.HashToken("ham")
	if !(v.At(spam) > v.At(ham)) {
		t.Fatal("repeated token should weigh more")
	}
}

func TestOnlineIDFDownweightsCommonTerms(t *testing.T) {
	z := New(1<<16, true)
	// "the" appears in every doc; "zebra" only in the last.
	for i := 0; i < 50; i++ {
		z.Vectorize("the common words everywhere")
	}
	v := z.Vectorize("the zebra")
	if z.Docs() != 51 {
		t.Fatalf("docs = %d", z.Docs())
	}
	if !(v.At(z.HashToken("zebra")) > v.At(z.HashToken("the"))) {
		t.Fatal("IDF did not downweight the common term")
	}
}

func TestDimsBoundsHashes(t *testing.T) {
	z := New(32, false)
	v := z.Vectorize("many different tokens colliding in a tiny space here")
	if v.MaxDim() > 32 {
		t.Fatalf("dim %d out of space", v.MaxDim())
	}
	if z.Dims() != 32 {
		t.Fatal("Dims accessor wrong")
	}
}

func TestZeroDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for dims=0")
		}
	}()
	New(0, false)
}
