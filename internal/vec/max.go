package vec

// MaxTracker maintains per-dimension maxima over a set of vectors: the
// vector m of the paper (and m̂ when restricted to indexed vectors).
// Missing dimensions have maximum 0.
type MaxTracker map[uint32]float64

// NewMaxTracker returns an empty tracker.
func NewMaxTracker() MaxTracker { return make(MaxTracker) }

// Update raises the tracked maxima with v's coordinates and returns the
// dimensions whose maximum increased (nil when none did). The returned
// slice drives re-indexing in STR-L2AP.
func (m MaxTracker) Update(v Vector) []uint32 {
	var changed []uint32
	for i, d := range v.Dims {
		if val := v.Vals[i]; val > m[d] {
			m[d] = val
			changed = append(changed, d)
		}
	}
	return changed
}

// Merge raises maxima with those of other.
func (m MaxTracker) Merge(other MaxTracker) {
	for d, val := range other {
		if val > m[d] {
			m[d] = val
		}
	}
}

// At returns the maximum for dimension d (0 when unseen).
func (m MaxTracker) At(d uint32) float64 { return m[d] }

// Dot returns Σ_j v_j · m_j, the rs1-style upper bound on the dot product
// of v with any tracked vector.
func (m MaxTracker) Dot(v Vector) float64 {
	s := 0.0
	for i, d := range v.Dims {
		s += v.Vals[i] * m[d]
	}
	return s
}

// Clone returns a copy.
func (m MaxTracker) Clone() MaxTracker {
	out := make(MaxTracker, len(m))
	for d, v := range m {
		out[d] = v
	}
	return out
}
