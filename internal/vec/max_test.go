package vec

import "testing"

func TestMaxTrackerUpdate(t *testing.T) {
	m := NewMaxTracker()
	changed := m.Update(MustNew([]uint32{1, 2}, []float64{0.5, 0.7}))
	if len(changed) != 2 {
		t.Fatalf("changed = %v", changed)
	}
	changed = m.Update(MustNew([]uint32{1, 3}, []float64{0.4, 0.9}))
	if len(changed) != 1 || changed[0] != 3 {
		t.Fatalf("changed = %v", changed)
	}
	if m.At(1) != 0.5 || m.At(2) != 0.7 || m.At(3) != 0.9 || m.At(99) != 0 {
		t.Fatalf("maxima wrong: %v", m)
	}
}

func TestMaxTrackerMerge(t *testing.T) {
	a := MaxTracker{1: 0.5, 2: 0.9}
	b := MaxTracker{1: 0.8, 3: 0.1}
	a.Merge(b)
	if a.At(1) != 0.8 || a.At(2) != 0.9 || a.At(3) != 0.1 {
		t.Fatalf("merged = %v", a)
	}
}

func TestMaxTrackerDotIsUpperBound(t *testing.T) {
	m := NewMaxTracker()
	vs := []Vector{
		MustNew([]uint32{0, 1}, []float64{0.3, 0.4}),
		MustNew([]uint32{1, 2}, []float64{0.6, 0.2}),
	}
	for _, v := range vs {
		m.Update(v)
	}
	q := MustNew([]uint32{0, 1, 2}, []float64{1, 1, 1})
	bound := m.Dot(q)
	for _, v := range vs {
		if Dot(q, v) > bound+1e-12 {
			t.Fatalf("dot %v exceeds bound %v", Dot(q, v), bound)
		}
	}
}

func TestMaxTrackerClone(t *testing.T) {
	m := MaxTracker{1: 0.5}
	c := m.Clone()
	c[1] = 0.9
	if m.At(1) != 0.5 {
		t.Fatal("clone shares storage")
	}
}
