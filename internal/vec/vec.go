// Package vec implements sparse vectors in a high-dimensional Euclidean
// space, the data representation used throughout the SSSJ system.
//
// A Vector stores its non-zero coordinates as two parallel slices sorted by
// dimension. All similarity computations in the paper assume vectors are
// normalized to unit L2 length, so dot products equal cosine similarities.
package vec

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a sparse vector: parallel slices of dimensions (strictly
// increasing) and the corresponding non-zero values. The zero value is the
// empty vector.
type Vector struct {
	Dims []uint32
	Vals []float64
}

// ErrUnsorted is returned by Validate when dimensions are not strictly
// increasing.
var ErrUnsorted = errors.New("vec: dimensions not strictly increasing")

// ErrZeroValue is returned by Validate when an explicit zero (or non-finite)
// value is stored.
var ErrZeroValue = errors.New("vec: stored value is zero or not finite")

// ErrLengthMismatch is returned by Validate when Dims and Vals differ in
// length.
var ErrLengthMismatch = errors.New("vec: dims and vals length mismatch")

// New builds a vector from parallel dim/value slices, copying, sorting, and
// merging duplicate dimensions (values for the same dimension are summed).
// Zero-valued entries are dropped.
func New(dims []uint32, vals []float64) (Vector, error) {
	if len(dims) != len(vals) {
		return Vector{}, ErrLengthMismatch
	}
	type entry struct {
		d uint32
		v float64
	}
	entries := make([]entry, 0, len(dims))
	for i, d := range dims {
		if math.IsNaN(vals[i]) || math.IsInf(vals[i], 0) {
			return Vector{}, ErrZeroValue
		}
		entries = append(entries, entry{d, vals[i]})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].d < entries[j].d })
	v := Vector{
		Dims: make([]uint32, 0, len(entries)),
		Vals: make([]float64, 0, len(entries)),
	}
	for i := 0; i < len(entries); {
		d := entries[i].d
		sum := 0.0
		for ; i < len(entries) && entries[i].d == d; i++ {
			sum += entries[i].v
		}
		if sum != 0 {
			v.Dims = append(v.Dims, d)
			v.Vals = append(v.Vals, sum)
		}
	}
	return v, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(dims []uint32, vals []float64) Vector {
	v, err := New(dims, vals)
	if err != nil {
		panic(err)
	}
	return v
}

// FromMap builds a vector from a dimension-to-value map, dropping zeros.
func FromMap(m map[uint32]float64) Vector {
	dims := make([]uint32, 0, len(m))
	for d, val := range m {
		if val != 0 {
			dims = append(dims, d)
		}
	}
	sort.Slice(dims, func(i, j int) bool { return dims[i] < dims[j] })
	vals := make([]float64, len(dims))
	for i, d := range dims {
		vals[i] = m[d]
	}
	return Vector{Dims: dims, Vals: vals}
}

// Validate checks the structural invariants: equal-length slices, strictly
// increasing dimensions, finite non-zero values.
func (v Vector) Validate() error {
	if len(v.Dims) != len(v.Vals) {
		return ErrLengthMismatch
	}
	for i := range v.Dims {
		if i > 0 && v.Dims[i] <= v.Dims[i-1] {
			return ErrUnsorted
		}
		if v.Vals[i] == 0 || math.IsNaN(v.Vals[i]) || math.IsInf(v.Vals[i], 0) {
			return ErrZeroValue
		}
	}
	return nil
}

// NNZ returns the number of non-zero coordinates (denoted |x| in the paper).
func (v Vector) NNZ() int { return len(v.Dims) }

// IsEmpty reports whether the vector has no non-zero coordinates.
func (v Vector) IsEmpty() bool { return len(v.Dims) == 0 }

// Norm returns the L2 norm.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, x := range v.Vals {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of coordinate values (denoted Σx in the paper).
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v.Vals {
		s += x
	}
	return s
}

// MaxVal returns the maximum coordinate value (denoted vm_x in the paper),
// or 0 for an empty vector.
func (v Vector) MaxVal() float64 {
	m := 0.0
	for _, x := range v.Vals {
		if x > m {
			m = x
		}
	}
	return m
}

// MaxDim returns the largest dimension index plus one (a dimensionality
// bound), or 0 for an empty vector.
func (v Vector) MaxDim() uint32 {
	if len(v.Dims) == 0 {
		return 0
	}
	return v.Dims[len(v.Dims)-1] + 1
}

// At returns the value at dimension d (0 when absent).
func (v Vector) At(d uint32) float64 {
	i := sort.Search(len(v.Dims), func(i int) bool { return v.Dims[i] >= d })
	if i < len(v.Dims) && v.Dims[i] == d {
		return v.Vals[i]
	}
	return 0
}

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := Vector{
		Dims: make([]uint32, len(v.Dims)),
		Vals: make([]float64, len(v.Vals)),
	}
	copy(out.Dims, v.Dims)
	copy(out.Vals, v.Vals)
	return out
}

// Normalize returns a unit-L2-norm copy of v. Normalizing an empty vector
// returns an empty vector. Values whose squares would overflow or
// underflow float64 are rescaled by the largest magnitude first, so even
// extreme inputs normalize without producing zeros, infinities, or NaNs.
func (v Vector) Normalize() Vector {
	if len(v.Vals) == 0 {
		return Vector{}
	}
	out := v.Clone()
	n := out.Norm()
	if n == 0 || math.IsInf(n, 0) {
		// Σx² overflowed (huge values) or underflowed (tiny values):
		// divide by the max magnitude first, making the largest value ±1.
		m := 0.0
		for _, x := range out.Vals {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
		if m == 0 {
			return Vector{}
		}
		for i := range out.Vals {
			out.Vals[i] /= m
		}
		// Values that underflow to exactly 0 relative to the largest
		// coordinate carry no information; drop them.
		w := 0
		for i := range out.Vals {
			if out.Vals[i] != 0 {
				out.Dims[w] = out.Dims[i]
				out.Vals[w] = out.Vals[i]
				w++
			}
		}
		out.Dims, out.Vals = out.Dims[:w], out.Vals[:w]
		n = out.Norm()
		if n == 0 {
			return Vector{}
		}
	}
	for i := range out.Vals {
		out.Vals[i] /= n
	}
	return out
}

// IsUnit reports whether the vector's norm is 1 within tolerance eps.
func (v Vector) IsUnit(eps float64) bool {
	return math.Abs(v.Norm()-1) <= eps
}

// Dot computes the dot product of two sparse vectors by merging their
// sorted dimension lists.
func Dot(a, b Vector) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(a.Dims) && j < len(b.Dims) {
		switch {
		case a.Dims[i] == b.Dims[j]:
			s += a.Vals[i] * b.Vals[j]
			i++
			j++
		case a.Dims[i] < b.Dims[j]:
			i++
		default:
			j++
		}
	}
	return s
}

// Cosine computes the cosine similarity of two (not necessarily normalized)
// vectors. Returns 0 if either vector is empty.
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Prefix returns the prefix of v containing coordinates with dimension
// strictly less than d (denoted x' = x'_d in the paper). The returned
// vector shares storage with v.
func (v Vector) Prefix(d uint32) Vector {
	i := sort.Search(len(v.Dims), func(i int) bool { return v.Dims[i] >= d })
	return Vector{Dims: v.Dims[:i], Vals: v.Vals[:i]}
}

// Suffix returns the coordinates with dimension >= d (the indexed part in
// the prefix-filtering schemes). Shares storage with v.
func (v Vector) Suffix(d uint32) Vector {
	i := sort.Search(len(v.Dims), func(i int) bool { return v.Dims[i] >= d })
	return Vector{Dims: v.Dims[i:], Vals: v.Vals[i:]}
}

// SliceByIndex returns the sub-vector covering coordinate positions
// [from, to) in storage order. Shares storage with v.
func (v Vector) SliceByIndex(from, to int) Vector {
	return Vector{Dims: v.Dims[from:to], Vals: v.Vals[from:to]}
}

// PrefixNorms returns, for each coordinate position i, the L2 norm of the
// prefix *before* position i: out[i] = ||<v_0 .. v_{i-1}>||. This is the
// quantity ||x'_j|| stored in L2AP/L2 posting entries. out has length
// NNZ()+1; out[NNZ()] is the full norm.
func (v Vector) PrefixNorms() []float64 {
	out := make([]float64, len(v.Vals)+1)
	sq := 0.0
	for i, x := range v.Vals {
		out[i] = math.Sqrt(sq)
		sq += x * x
	}
	out[len(v.Vals)] = math.Sqrt(sq)
	return out
}

// Equal reports exact equality of dimensions and values.
func Equal(a, b Vector) bool {
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if a.Dims[i] != b.Dims[i] || a.Vals[i] != b.Vals[i] {
			return false
		}
	}
	return true
}

// String renders the vector as "(d:v, d:v, ...)".
func (v Vector) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i := range v.Dims {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d:%.4g", v.Dims[i], v.Vals[i])
	}
	sb.WriteByte(')')
	return sb.String()
}
