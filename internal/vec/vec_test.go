package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewSortsAndMerges(t *testing.T) {
	v, err := New([]uint32{5, 1, 5, 3}, []float64{2, 1, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{Dims: []uint32{1, 3, 5}, Vals: []float64{1, 4, 5}}
	if !Equal(v, want) {
		t.Fatalf("got %v want %v", v, want)
	}
}

func TestNewDropsZeroSums(t *testing.T) {
	v, err := New([]uint32{2, 2, 7}, []float64{1, -1, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{Dims: []uint32{7}, Vals: []float64{3}}
	if !Equal(v, want) {
		t.Fatalf("got %v want %v", v, want)
	}
}

func TestNewLengthMismatch(t *testing.T) {
	if _, err := New([]uint32{1}, nil); err != ErrLengthMismatch {
		t.Fatalf("got %v want ErrLengthMismatch", err)
	}
}

func TestNewRejectsNaNInf(t *testing.T) {
	if _, err := New([]uint32{1}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := New([]uint32{1}, []float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		v    Vector
		want error
	}{
		{"ok", MustNew([]uint32{1, 2}, []float64{1, 2}), nil},
		{"empty", Vector{}, nil},
		{"mismatch", Vector{Dims: []uint32{1}}, ErrLengthMismatch},
		{"unsorted", Vector{Dims: []uint32{2, 1}, Vals: []float64{1, 1}}, ErrUnsorted},
		{"dup", Vector{Dims: []uint32{1, 1}, Vals: []float64{1, 1}}, ErrUnsorted},
		{"zero", Vector{Dims: []uint32{1}, Vals: []float64{0}}, ErrZeroValue},
	}
	for _, c := range cases {
		if got := c.v.Validate(); got != c.want {
			t.Errorf("%s: got %v want %v", c.name, got, c.want)
		}
	}
}

func TestFromMap(t *testing.T) {
	v := FromMap(map[uint32]float64{9: 2, 3: 1, 4: 0})
	want := Vector{Dims: []uint32{3, 9}, Vals: []float64{1, 2}}
	if !Equal(v, want) {
		t.Fatalf("got %v want %v", v, want)
	}
}

func TestDotMergesSortedDims(t *testing.T) {
	a := MustNew([]uint32{1, 3, 5}, []float64{1, 2, 3})
	b := MustNew([]uint32{2, 3, 5, 9}, []float64{10, 4, 5, 7})
	if got := Dot(a, b); got != 2*4+3*5 {
		t.Fatalf("dot = %v", got)
	}
	if got := Dot(a, Vector{}); got != 0 {
		t.Fatalf("dot with empty = %v", got)
	}
}

func TestNormalizeAndNorm(t *testing.T) {
	v := MustNew([]uint32{0, 1}, []float64{3, 4})
	if v.Norm() != 5 {
		t.Fatalf("norm = %v", v.Norm())
	}
	u := v.Normalize()
	if !u.IsUnit(1e-12) {
		t.Fatalf("normalized norm = %v", u.Norm())
	}
	// original untouched
	if v.Vals[0] != 3 {
		t.Fatal("Normalize mutated receiver")
	}
	if !Equal(Vector{}.Normalize(), Vector{}) {
		t.Fatal("normalizing empty should return empty")
	}
}

func TestStats(t *testing.T) {
	v := MustNew([]uint32{2, 4, 8}, []float64{0.5, 0.25, 0.75})
	if v.NNZ() != 3 {
		t.Fatalf("nnz = %d", v.NNZ())
	}
	if v.Sum() != 1.5 {
		t.Fatalf("sum = %v", v.Sum())
	}
	if v.MaxVal() != 0.75 {
		t.Fatalf("maxval = %v", v.MaxVal())
	}
	if v.MaxDim() != 9 {
		t.Fatalf("maxdim = %v", v.MaxDim())
	}
	if (Vector{}).MaxVal() != 0 || (Vector{}).MaxDim() != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestAt(t *testing.T) {
	v := MustNew([]uint32{2, 4}, []float64{1, 2})
	if v.At(2) != 1 || v.At(4) != 2 || v.At(3) != 0 || v.At(100) != 0 {
		t.Fatal("At lookup wrong")
	}
}

func TestPrefixSuffix(t *testing.T) {
	v := MustNew([]uint32{1, 3, 5, 7}, []float64{1, 2, 3, 4})
	p := v.Prefix(5)
	if !Equal(p, MustNew([]uint32{1, 3}, []float64{1, 2})) {
		t.Fatalf("prefix = %v", p)
	}
	s := v.Suffix(5)
	if !Equal(s, MustNew([]uint32{5, 7}, []float64{3, 4})) {
		t.Fatalf("suffix = %v", s)
	}
	// prefix + suffix partition the vector for any split point
	for d := uint32(0); d < 9; d++ {
		if v.Prefix(d).NNZ()+v.Suffix(d).NNZ() != v.NNZ() {
			t.Fatalf("partition broken at %d", d)
		}
	}
}

func TestPrefixNorms(t *testing.T) {
	v := MustNew([]uint32{0, 1, 2}, []float64{3, 4, 12})
	pn := v.PrefixNorms()
	want := []float64{0, 3, 5, 13}
	if len(pn) != len(want) {
		t.Fatalf("len = %d", len(pn))
	}
	for i := range want {
		if !almostEq(pn[i], want[i], 1e-12) {
			t.Fatalf("pn[%d] = %v want %v", i, pn[i], want[i])
		}
	}
}

func TestCosine(t *testing.T) {
	a := MustNew([]uint32{0}, []float64{2})
	b := MustNew([]uint32{0}, []float64{5})
	if !almostEq(Cosine(a, b), 1, 1e-12) {
		t.Fatal("parallel cosine != 1")
	}
	c := MustNew([]uint32{1}, []float64{1})
	if Cosine(a, c) != 0 {
		t.Fatal("orthogonal cosine != 0")
	}
	if Cosine(a, Vector{}) != 0 {
		t.Fatal("empty cosine != 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	v := MustNew([]uint32{1}, []float64{2})
	c := v.Clone()
	c.Vals[0] = 99
	if v.Vals[0] != 2 {
		t.Fatal("clone shares storage")
	}
}

func TestString(t *testing.T) {
	v := MustNew([]uint32{1, 2}, []float64{0.5, 1})
	if got := v.String(); got != "(1:0.5, 2:1)" {
		t.Fatalf("string = %q", got)
	}
}

// randomVector builds a random sparse vector for property tests.
func randomVector(r *rand.Rand, maxDim, maxNNZ int) Vector {
	nnz := r.Intn(maxNNZ + 1)
	m := make(map[uint32]float64, nnz)
	for i := 0; i < nnz; i++ {
		m[uint32(r.Intn(maxDim))] = r.Float64() + 0.01
	}
	return FromMap(m)
}

func TestQuickDotSymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomVector(rr, 50, 20), randomVector(rr, 50, 20)
		return almostEq(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomVector(rr, 50, 20), randomVector(rr, 50, 20)
		return Dot(a, b) <= a.Norm()*b.Norm()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizeUnit(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := randomVector(rr, 100, 30)
		if v.IsEmpty() {
			return true
		}
		return v.Normalize().IsUnit(1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrefixNormsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v := randomVector(rr, 100, 30)
		pn := v.PrefixNorms()
		for i := 1; i < len(pn); i++ {
			if pn[i] < pn[i-1] {
				return false
			}
		}
		return almostEq(pn[len(pn)-1], v.Norm(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDotViaPrefixSuffixSplit(t *testing.T) {
	// dot(x,y) == dot(x, y.Prefix(d)) + dot(x, y.Suffix(d)) for every d.
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x, y := randomVector(rr, 40, 15), randomVector(rr, 40, 15)
		full := Dot(x, y)
		for d := uint32(0); d <= 40; d += 7 {
			if !almostEq(full, Dot(x, y.Prefix(d))+Dot(x, y.Suffix(d)), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot(b *testing.B) {
	r := rand.New(rand.NewSource(42))
	x := randomVector(r, 100000, 300).Normalize()
	y := randomVector(r, 100000, 300).Normalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func TestNormalizeExtremeValues(t *testing.T) {
	// Squares overflow float64 but the vector must still normalize.
	huge := MustNew([]uint32{1, 2}, []float64{1e308, 1e308})
	u := huge.Normalize()
	if err := u.Validate(); err != nil {
		t.Fatalf("huge: %v (%v)", err, u)
	}
	if !u.IsUnit(1e-9) {
		t.Fatalf("huge norm = %v", u.Norm())
	}
	// Squares underflow to zero.
	tiny := MustNew([]uint32{1, 2}, []float64{1e-308, 1e-308})
	u = tiny.Normalize()
	if err := u.Validate(); err != nil {
		t.Fatalf("tiny: %v (%v)", err, u)
	}
	if !u.IsUnit(1e-9) {
		t.Fatalf("tiny norm = %v", u.Norm())
	}
	// Mixed magnitudes: the relatively-zero coordinate is dropped.
	mixed := MustNew([]uint32{1, 2}, []float64{1e308, 1e-308})
	u = mixed.Normalize()
	if err := u.Validate(); err != nil {
		t.Fatalf("mixed: %v (%v)", err, u)
	}
	if u.NNZ() != 1 || !u.IsUnit(1e-9) {
		t.Fatalf("mixed = %v", u)
	}
}
