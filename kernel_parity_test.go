package sssj

import (
	"bytes"
	"fmt"
	"testing"

	"sssj/internal/apss"
	"sssj/internal/index/streaming"
	"sssj/internal/metrics"
	"sssj/internal/stream"
)

// These tests pin the vectorized verification kernels (kernelv.go) to
// the frozen scalar kernels (kernel_scalar.go) across every deployment
// shape the library offers: worker counts, cluster shards, self vs
// foreign joins, and bounded disorder. "Parity" here is the strong
// form the kernel files promise — bit-identical match sets at eps 0
// AND identical pruning Counters, so the quantized cheap-reject tier
// is provably a shortcut, never a behavior change.

// kernelDeploy names one deployment shape of the streaming index.
type kernelDeploy struct {
	name    string
	workers int // Workers passed to streaming.New (shards == 0)
	shards  int // cluster-worker group size (0 = in-process)
}

var kernelDeploys = []kernelDeploy{
	{name: "w1", workers: 0},
	{name: "w4", workers: 4},
	{name: "s1", shards: 1},
	{name: "s2", shards: 2},
}

// kernelShardTargets mirrors the coordinator's routing rule for the
// cluster deploys: L2AP workers each hold a full replica (re-indexing
// is dimension-global), every other kind routes an item to the owners
// of its nonzero dimensions.
func kernelShardTargets(kind streaming.Kind, n int, it Item) []int {
	if kind == streaming.L2AP {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]bool, n)
	var out []int
	for _, d := range it.Vec.Dims {
		w := int(d % uint32(n))
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// runKernel drives items through one deployment with the chosen kernel
// implementation and returns the emitted matches and final counters.
// delta > 0 shuffles the stream within delta and fronts the index with
// a reorder buffer, so the kernels see the arrival patterns the
// event-time layer actually produces.
func runKernel(t testing.TB, kind streaming.Kind, p apss.Params, d kernelDeploy, foreign, scalar bool, delta float64, items []Item) ([]apss.Match, metrics.Counters) {
	t.Helper()
	var c metrics.Counters
	ab := streaming.Ablations{ScalarKernel: scalar}
	var out []apss.Match
	var add func(it Item) error
	if d.shards > 0 {
		workers := make([]streaming.Index, d.shards)
		for i := range workers {
			ix, err := streaming.New(kind, p, streaming.Options{
				Shard: streaming.Shard{ID: i, N: d.shards}, Foreign: foreign,
				Ablations: ab, Counters: &c,
			})
			if err != nil {
				t.Fatal(err)
			}
			workers[i] = ix
		}
		add = func(it Item) error {
			seen := make(map[uint64]bool)
			for _, w := range kernelShardTargets(kind, d.shards, it) {
				ms, err := workers[w].Add(it)
				if err != nil {
					return err
				}
				for _, m := range ms {
					if seen[m.Y] {
						continue
					}
					seen[m.Y] = true
					out = append(out, m)
				}
			}
			return nil
		}
	} else {
		ix, err := streaming.New(kind, p, streaming.Options{
			Workers: d.workers, Foreign: foreign, Ablations: ab, Counters: &c,
		})
		if err != nil {
			t.Fatal(err)
		}
		add = func(it Item) error {
			ms, err := ix.Add(it)
			out = append(out, ms...)
			return err
		}
	}
	if delta > 0 {
		r := stream.NewReorder(delta)
		for _, it := range stream.ShuffleWithin(items, delta, harnessShuffleSeed) {
			if err := r.Push(it, add); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.Flush(add); err != nil {
			t.Fatal(err)
		}
	} else {
		for _, it := range items {
			if err := add(it); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out, c
}

// TestKernelParityGrid: the full deployment grid. For each cell the
// vectorized kernels must reproduce the frozen scalar kernels exactly:
// identical match sets at eps 0 and identical Counters, so every
// pruning decision — not just the surviving pairs — agrees.
func TestKernelParityGrid(t *testing.T) {
	p := apss.Params{Theta: 0.6, Lambda: 0.1}
	base := fuzzForeignItems(11, 250)
	selfItems := make([]Item, len(base))
	copy(selfItems, base)
	for i := range selfItems {
		selfItems[i].Side = SideA
	}
	for _, kind := range []streaming.Kind{streaming.INV, streaming.L2, streaming.L2AP} {
		for _, d := range kernelDeploys {
			for _, foreign := range []bool{false, true} {
				items := selfItems
				mode := "self"
				if foreign {
					items, mode = base, "foreign"
				}
				for _, delta := range []float64{0, 3} {
					name := fmt.Sprintf("%v/%s/%s/delta%v", kind, d.name, mode, delta)
					t.Run(name, func(t *testing.T) {
						want, wc := runKernel(t, kind, p, d, foreign, true, delta, items)
						got, gc := runKernel(t, kind, p, d, foreign, false, delta, items)
						if !apss.EqualMatchSets(got, want, 0) {
							onlyG, onlyW := apss.DiffMatchSets(got, want)
							t.Fatalf("vectorized ≠ scalar: %d vs %d matches (only-vec %v, only-scalar %v)",
								len(got), len(want), onlyG, onlyW)
						}
						if gc != wc {
							t.Fatalf("counters diverge:\nvec    %+v\nscalar %+v", gc, wc)
						}
					})
				}
			}
		}
	}
}

// kernelCkptRun runs the first half of items under one kernel, saves
// the index, reloads it under (possibly) the other kernel, runs the
// second half, and returns the continuation's matches and counters.
func kernelCkptRun(t *testing.T, kind streaming.Kind, p apss.Params, workers int, foreign, scalarBefore, scalarAfter bool, items []Item, half int) ([]apss.Match, metrics.Counters) {
	t.Helper()
	opts := streaming.Options{
		Workers: workers, Foreign: foreign,
		Ablations: streaming.Ablations{ScalarKernel: scalarBefore},
		Counters:  &metrics.Counters{},
	}
	ix, err := streaming.New(kind, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:half] {
		if _, err := ix.Add(it); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := streaming.Save(ix, &buf); err != nil {
		t.Fatal(err)
	}
	var c metrics.Counters
	opts.Ablations = streaming.Ablations{ScalarKernel: scalarAfter}
	opts.Counters = &c
	ix2, err := streaming.Load(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	var out []apss.Match
	for _, it := range items[half:] {
		ms, err := ix2.Add(it)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ms...)
	}
	return out, c
}

// TestKernelParityCheckpoint proves the block summaries feeding the
// quantized tier are derived state: a snapshot written by either
// kernel loads into either kernel with no format change, the rebuilt
// summaries steer the continuation to the exact matches of an
// uncheckpointed scalar run, and all four before×after kernel pairs
// agree on the continuation's Counters.
func TestKernelParityCheckpoint(t *testing.T) {
	p := apss.Params{Theta: 0.6, Lambda: 0.1}
	base := fuzzForeignItems(5, 200)
	half := len(base) / 2
	selfItems := make([]Item, len(base))
	copy(selfItems, base)
	for i := range selfItems {
		selfItems[i].Side = SideA
	}
	for _, kind := range []streaming.Kind{streaming.INV, streaming.L2, streaming.L2AP} {
		for _, workers := range []int{0, 4} {
			for _, foreign := range []bool{false, true} {
				items := selfItems
				mode := "self"
				if foreign {
					items, mode = base, "foreign"
				}
				name := fmt.Sprintf("%v/w%d/%s", kind, workers, mode)
				t.Run(name, func(t *testing.T) {
					// Reference: uncheckpointed scalar run; keep only the
					// matches the second half of the stream emits.
					ix, err := streaming.New(kind, p, streaming.Options{
						Workers: workers, Foreign: foreign,
						Ablations: streaming.Ablations{ScalarKernel: true},
					})
					if err != nil {
						t.Fatal(err)
					}
					var want []apss.Match
					for i, it := range items {
						ms, err := ix.Add(it)
						if err != nil {
							t.Fatal(err)
						}
						if i >= half {
							want = append(want, ms...)
						}
					}
					var refC *metrics.Counters
					for _, before := range []bool{true, false} {
						for _, after := range []bool{true, false} {
							got, c := kernelCkptRun(t, kind, p, workers, foreign, before, after, items, half)
							if !apss.EqualMatchSets(got, want, 0) {
								onlyG, onlyW := apss.DiffMatchSets(got, want)
								t.Fatalf("save=%v load=%v: continuation ≠ scalar run: %d vs %d matches (only-ckpt %v, only-ref %v)",
									before, after, len(got), len(want), onlyG, onlyW)
							}
							if refC == nil {
								refC = &c
							} else if c != *refC {
								t.Fatalf("save=%v load=%v: continuation counters diverge:\ngot %+v\nref %+v",
									before, after, c, *refC)
							}
						}
					}
				})
			}
		}
	}
}

// FuzzKernelParity is the differential fuzz target for the kernel
// rewrite: a fuzz-chosen stream, kind, deployment, join mode, and
// disorder bound must produce bit-identical matches and Counters under
// the vectorized and frozen scalar kernels.
func FuzzKernelParity(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(42), uint8(4), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(8), uint8(2), uint8(2))
	f.Add(uint64(1234), uint8(21), uint8(1), uint8(3))
	f.Add(uint64(99), uint8(16), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, cfg, thetaSel, deltaSel uint8) {
		items := fuzzForeignItems(seed, 60)
		if len(items) == 0 {
			return
		}
		theta := []float64{0.5, 0.7, 0.9}[int(thetaSel)%3]
		kind := []streaming.Kind{streaming.INV, streaming.L2, streaming.L2AP}[int(cfg)%3]
		d := kernelDeploys[int(cfg/3)%len(kernelDeploys)]
		foreign := (cfg/12)%2 == 1
		if !foreign {
			for i := range items {
				items[i].Side = SideA
			}
		}
		delta := []float64{0, 0.5, 2, 10}[int(deltaSel)%4]
		p := apss.Params{Theta: theta, Lambda: 0.1}
		want, wc := runKernel(t, kind, p, d, foreign, true, delta, items)
		got, gc := runKernel(t, kind, p, d, foreign, false, delta, items)
		if !apss.EqualMatchSets(got, want, 0) {
			t.Fatalf("vectorized ≠ scalar: %d vs %d matches (seed %d cfg %d θ %v δ %v)",
				len(got), len(want), seed, cfg, theta, delta)
		}
		if gc != wc {
			t.Fatalf("counters diverge (seed %d cfg %d θ %v δ %v):\nvec    %+v\nscalar %+v",
				seed, cfg, theta, delta, gc, wc)
		}
	})
}
