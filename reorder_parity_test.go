package sssj

import (
	"errors"
	"fmt"
	"testing"

	"sssj/internal/apss"
	"sssj/internal/datagen"
	"sssj/internal/stream"
)

// This file is the event-time parity battery: a stream shuffled within
// the lateness bound δ, joined with Options.Lateness = δ, must produce
// the bit-identical match sequence of the sorted stream joined under
// the strict contract — the reorder stage re-sorts, the engines never
// notice. The grid test pins the claim across every engine; the fuzz
// target keeps hunting for configurations that break it.

// reorderGrid is the parity grid: {STR, MB} × {INV, L2, L2AP} ×
// workers {1, 4} (STR only).
func reorderGrid() []Options {
	var out []Options
	for _, ix := range []IndexKind{IndexINV, IndexL2, IndexL2AP} {
		for _, w := range []int{1, 4} {
			out = append(out, Options{Theta: 0.5, Lambda: 0.05, Framework: Streaming, Index: ix, Workers: w})
		}
		out = append(out, Options{Theta: 0.5, Lambda: 0.05, Framework: MiniBatch, Index: ix})
	}
	return out
}

// TestReorderParityOracle: for each engine and δ, the shuffled-within-δ
// stream under Lateness = δ equals the sorted stream under Lateness = 0
// with eps 0 — and the shuffle must genuinely disorder the input, or the
// oracle is vacuous.
func TestReorderParityOracle(t *testing.T) {
	items := datagen.RCV1Profile().Scaled(0.05).Generate(17)
	for _, delta := range []float64{3, 15} {
		shuffled := stream.ShuffleWithin(items, delta, harnessShuffleSeed)
		disordered := false
		for i := 1; i < len(shuffled); i++ {
			if shuffled[i].Time < shuffled[i-1].Time {
				disordered = true
				break
			}
		}
		if !disordered {
			t.Fatalf("δ=%v: shuffle left the stream sorted; oracle vacuous", delta)
		}
		for _, opts := range reorderGrid() {
			name := fmt.Sprintf("d%v-%v-%v-w%d", delta, opts.Framework, opts.Index, opts.Workers)
			t.Run(name, func(t *testing.T) {
				want, err := SelfJoin(opts, items)
				if err != nil {
					t.Fatal(err)
				}
				if len(want) == 0 {
					t.Fatal("no matches; parity test vacuous")
				}
				lateOpts := opts
				lateOpts.Lateness = delta
				got, err := SelfJoin(lateOpts, shuffled)
				if err != nil {
					t.Fatal(err)
				}
				if !apss.EqualMatchSets(got, want, 0) {
					onlyG, onlyW := apss.DiffMatchSets(got, want)
					t.Fatalf("shuffled ≠ sorted: %d vs %d matches (only-shuffled %v, only-sorted %v)",
						len(got), len(want), onlyG, onlyW)
				}
			})
		}
	}
}

// harnessShuffleSeed mirrors harness.ShuffleSeed so the oracle exercises
// the same disorder the perf scenarios measure (kept as a literal to
// avoid importing internal/harness into the public package's tests).
const harnessShuffleSeed int64 = 1

// TestReorderLateDropsObservable: an item pushed behind the watermark
// comes back as a TimeRegressionError carrying the item's time and the
// watermark it fell behind, and is counted in Stats.LateDrops.
func TestReorderLateDropsObservable(t *testing.T) {
	var st Stats
	j, err := New(Options{Theta: 0.6, Lambda: 0.05, Lateness: 5, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := NewVector([]uint32{1}, []float64{1})
	for _, tm := range []float64{10, 20} {
		if _, err := j.Process(Item{ID: uint64(tm), Time: tm, Vec: v}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = j.Process(Item{ID: 99, Time: 14, Vec: v})
	var tre *TimeRegressionError
	if !errors.As(err, &tre) {
		t.Fatalf("late item: got %v, want *TimeRegressionError", err)
	}
	if tre.ID != 99 || tre.Time != 14 || tre.Watermark != 15 {
		t.Fatalf("error fields %+v, want ID=99 Time=14 Watermark=15", tre)
	}
	if st.LateDrops != 1 {
		t.Fatalf("LateDrops = %d, want 1", st.LateDrops)
	}
	// The joiner survives: the next admissible item processes fine.
	if _, err := j.Process(Item{ID: 100, Time: 21, Vec: v}); err != nil {
		t.Fatal(err)
	}
}

// FuzzReorderParity fuzzes the event-time parity oracle: derive a
// stream, shuffle it within a fuzz-chosen δ, and require the
// bounded-lateness join to reproduce the sorted run bit for bit across
// fuzz-chosen engines.
func FuzzReorderParity(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(0), uint8(0))
	f.Add(uint64(42), uint8(1), uint8(1), uint8(2))
	f.Add(uint64(7), uint8(3), uint8(2), uint8(3))
	f.Add(uint64(1234), uint8(4), uint8(0), uint8(1))
	f.Add(uint64(99), uint8(5), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, cfg, thetaSel, deltaSel uint8) {
		items := fuzzForeignItems(seed, 60)
		if len(items) == 0 {
			return
		}
		for i := range items {
			items[i].Side = SideA // self-join parity; sides are FuzzForeignSelfParity's job
		}
		theta := []float64{0.5, 0.7, 0.9}[int(thetaSel)%3]
		delta := []float64{0.5, 2, 10, 40}[int(deltaSel)%4]
		opts := Options{Theta: theta, Lambda: 0.1}
		switch cfg % 6 {
		case 0:
			opts.Index = IndexINV
		case 1:
			opts.Index = IndexL2
		case 2:
			opts.Index = IndexL2AP
		case 3:
			opts.Index = IndexL2
			opts.Workers = 4
		case 4:
			opts.Framework = MiniBatch
			opts.Index = IndexL2
		case 5:
			opts.Framework = MiniBatch
			opts.Index = IndexINV
		}
		want, err := SelfJoin(opts, items)
		if err != nil {
			t.Fatal(err)
		}
		shuffled := stream.ShuffleWithin(items, delta, int64(seed))
		lateOpts := opts
		lateOpts.Lateness = delta
		got, err := SelfJoin(lateOpts, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !apss.EqualMatchSets(got, want, 0) {
			t.Fatalf("shuffled ≠ sorted: %d vs %d (seed %d cfg %d θ %v δ %v)",
				len(got), len(want), seed, cfg, theta, delta)
		}
	})
}
