// Command adaptsmoke is the self-tuning convergence check behind
// `make adapt-smoke`: it runs the auto-selector (with online dimension
// re-ranking) over the RCV1 and Tweets stream shapes and fails unless
// the layer behaved like a tuner rather than a thrasher — the match set
// equals the static reference's, the engine ladder moved at most its
// structural maximum of two promotions (INV → L2 → L2AP; the selector
// never demotes, so a converged run cannot flap), and the re-ranker
// actually engaged. The in-process tests pin the same contracts on
// small fuzz streams; this smoke runs them on the paper-shaped
// workloads CI benches with.
package main

import (
	"fmt"
	"os"

	"sssj"
	"sssj/internal/apss"
	"sssj/internal/datagen"
)

func run(name string, prof datagen.Profile, seed int64) error {
	items := prof.Scaled(0.1).Generate(seed)
	static := sssj.Options{Theta: 0.6, Lambda: 0.05, Index: sssj.IndexINV}
	want, err := sssj.SelfJoin(static, items)
	if err != nil {
		return fmt.Errorf("%s: static reference: %w", name, err)
	}
	if len(want) == 0 {
		return fmt.Errorf("%s: vacuous smoke: static reference found no matches", name)
	}

	j, err := sssj.New(sssj.Options{Theta: 0.6, Lambda: 0.05, Index: sssj.IndexAuto,
		Adaptive: sssj.Adaptive{Rerank: sssj.OrderDocFreqAsc, Cadence: 128}})
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	var got []sssj.Match
	for _, it := range items {
		ms, err := j.Process(it)
		if err != nil {
			return fmt.Errorf("%s: process: %w", name, err)
		}
		got = append(got, ms...)
	}
	if !apss.EqualMatchSets(got, want, 1e-9) {
		return fmt.Errorf("%s: self-tuning changed the output: %d matches vs %d static", name, len(got), len(want))
	}

	st, ok := j.AdaptState()
	if !ok {
		return fmt.Errorf("%s: adaptive joiner reports no AdaptState", name)
	}
	if st.Switches > 2 {
		return fmt.Errorf("%s: %d engine switches — the monotone ladder allows at most 2", name, st.Switches)
	}
	if st.Reranks < 1 {
		return fmt.Errorf("%s: the re-ranker never engaged (%d reranks over %d items)", name, st.Reranks, len(items))
	}
	fmt.Printf("adapt-smoke %-7s ok: %d items, %d matches, engine=%v switches=%d reranks=%d dims=%d\n",
		name, len(items), len(got), st.Kind, st.Switches, st.Reranks, st.OrderedDims)
	return nil
}

func main() {
	fail := false
	for _, tc := range []struct {
		name string
		prof datagen.Profile
		seed int64
	}{
		{"RCV1", datagen.RCV1Profile(), 101},
		{"Tweets", datagen.TweetsProfile(), 102},
	} {
		if err := run(tc.name, tc.prof, tc.seed); err != nil {
			fmt.Fprintln(os.Stderr, "adapt-smoke:", err)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}
