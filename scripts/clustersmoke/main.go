// Command clustersmoke is the process-level cluster smoke test behind
// `make cluster-smoke`: it boots two sssjd worker daemons (-shard 0/2
// and 1/2) plus an sssjc coordinator as real OS processes on loopback,
// streams a deterministic workload through the coordinator, and
// requires the match set to equal — bit for bit — what one
// single-process sssjd reports for the same stream. Both the self-join
// and the foreign A ⋈ B stream shapes run. This is the deployment-shape
// check the in-process tests cannot give: separate address spaces,
// real TCP, real process lifecycle.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"sssj/internal/apss"
	"sssj/internal/server"
	"sssj/internal/stream"
	"sssj/internal/vec"
)

func main() {
	sssjd := flag.String("sssjd", "bin/sssjd", "path to the sssjd binary")
	sssjc := flag.String("sssjc", "bin/sssjc", "path to the sssjc binary")
	n := flag.Int("n", 200, "items per stream")
	flag.Parse()
	for _, join := range []string{"self", "foreign"} {
		if err := runMode(*sssjd, *sssjc, join, *n); err != nil {
			fmt.Fprintf(os.Stderr, "cluster-smoke: %s: %v\n", join, err)
			os.Exit(1)
		}
		fmt.Printf("cluster-smoke: %s join OK (2 workers ≡ single process, %d items)\n", join, *n)
	}
}

// proc is a spawned daemon plus the address it bound.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

// start launches a daemon on 127.0.0.1:0 and scans its stderr for the
// "listening on <addr>" line every daemon logs once bound.
func start(bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				rest := line[i+len("listening on "):]
				if j := strings.IndexByte(rest, ' '); j >= 0 {
					rest = rest[:j]
				}
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr}, nil
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s did not report a listen address", bin)
	}
}

// stop SIGTERMs the daemon and waits for a clean exit.
func (p *proc) stop() error {
	if p == nil || p.cmd.Process == nil {
		return nil
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
		return fmt.Errorf("daemon did not exit on SIGTERM")
	}
}

// genItems derives the deterministic workload: clustered draws from a
// small vocabulary so real matches occur, strictly increasing times.
func genItems(seed int64, n int) []stream.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]stream.Item, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		nnz := 1 + rng.Intn(4)
		dims := map[uint32]float64{}
		for len(dims) < nnz {
			dims[uint32(rng.Intn(20))] = 0.1 + rng.Float64()
		}
		var ds []uint32
		var vs []float64
		for d := uint32(0); d < 20; d++ {
			if v, ok := dims[d]; ok {
				ds = append(ds, d)
				vs = append(vs, v)
			}
		}
		t += rng.Float64()
		items = append(items, stream.Item{ID: uint64(i), Time: t, Vec: vec.MustNew(ds, vs).Normalize()})
	}
	return items
}

// feed streams the items through one server and returns every reported
// match. Under the foreign join, odd positions go to stream B.
func feed(addr, join string, items []stream.Item) ([]apss.Match, error) {
	c, err := server.Dialer{DialTimeout: 2 * time.Second, IOTimeout: 30 * time.Second, Retries: 5}.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	side := apss.SideA
	var all []apss.Match
	for i, it := range items {
		if join == "foreign" {
			want := apss.SideA
			if i%2 == 1 {
				want = apss.SideB
			}
			if want != side {
				if err := c.Side(want); err != nil {
					return nil, err
				}
				side = want
			}
		}
		_, ms, err := c.Add(it.Time, it.Vec)
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
		all = append(all, ms...)
	}
	st, err := c.StatsJSON()
	if err != nil {
		return nil, fmt.Errorf("STATS JSON: %w", err)
	}
	if st.Items != int64(len(items)) {
		return nil, fmt.Errorf("server counted %d items, fed %d", st.Items, len(items))
	}
	return all, nil
}

// runMode runs one join mode end to end: 2-worker cluster vs a
// single-process daemon on the same stream.
func runMode(sssjd, sssjc, join string, n int) error {
	base := []string{"-theta", "0.7", "-lambda", "0.05", "-index", "L2", "-join", join}
	var procs []*proc
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()
	var workerAddrs []string
	for i := 0; i < 2; i++ {
		w, err := start(sssjd, append([]string{"-shard", fmt.Sprintf("%d/2", i)}, base...)...)
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
		procs = append(procs, w)
		workerAddrs = append(workerAddrs, w.addr)
	}
	coord, err := start(sssjc, append([]string{"-workers", strings.Join(workerAddrs, ",")}, base...)...)
	if err != nil {
		return fmt.Errorf("coordinator: %w", err)
	}
	procs = append(procs, coord)
	single, err := start(sssjd, base...)
	if err != nil {
		return fmt.Errorf("single-process daemon: %w", err)
	}
	procs = append(procs, single)

	items := genItems(7, n)
	got, err := feed(coord.addr, join, items)
	if err != nil {
		return fmt.Errorf("cluster stream: %w", err)
	}
	want, err := feed(single.addr, join, items)
	if err != nil {
		return fmt.Errorf("single-process stream: %w", err)
	}
	if len(want) == 0 {
		return fmt.Errorf("single-process run found no matches; smoke test vacuous")
	}
	if !apss.EqualMatchSets(got, want, 0) {
		return fmt.Errorf("cluster reported %d matches, single process %d — outputs differ", len(got), len(want))
	}
	for _, p := range procs {
		if err := p.stop(); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	procs = nil
	return nil
}
