// Command serversmoke is the process-level multi-tenant smoke test
// behind `make server-smoke`: it boots one sssjd daemon with the
// Prometheus endpoint enabled, creates three sessions with different
// thresholds and join modes, streams a deterministic workload through
// each, scrapes /metrics, live-migrates one session to a second daemon
// mid-stream, and requires every session's match set to equal — bit for
// bit — what a dedicated single-tenant daemon reports for the same
// stream. This is the deployment-shape check the in-process tests
// cannot give: separate address spaces, real TCP, real process
// lifecycle, a real HTTP scrape.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"sssj/internal/apss"
	"sssj/internal/server"
	"sssj/internal/stream"
	"sssj/internal/vec"
)

// tenant is one session in the smoke matrix: a name, its creation
// options, whether its stream is two-sided, and the flags a dedicated
// single-tenant reference daemon needs to run the same join.
type tenant struct {
	name    string
	opts    []string
	foreign bool
	refArgs []string
	seed    int64
}

var tenants = []tenant{
	{
		name:    "inv-low",
		opts:    []string{"theta=0.6", "lambda=0.05", "index=INV"},
		refArgs: []string{"-theta", "0.6", "-lambda", "0.05", "-index", "INV"},
		seed:    11,
	},
	{
		name:    "l2-high",
		opts:    []string{"theta=0.75", "lambda=0.05", "index=L2"},
		refArgs: []string{"-theta", "0.75", "-lambda", "0.05", "-index", "L2"},
		seed:    12,
	},
	{
		name:    "fk",
		opts:    []string{"theta=0.6", "lambda=0.05", "index=L2", "join=foreign"},
		foreign: true,
		refArgs: []string{"-theta", "0.6", "-lambda", "0.05", "-index", "L2", "-join", "foreign"},
		seed:    13,
	},
}

// migrateTenant is the session handed to the second daemon mid-stream.
const migrateTenant = "l2-high"

func main() {
	sssjd := flag.String("sssjd", "bin/sssjd", "path to the sssjd binary")
	n := flag.Int("n", 200, "items per tenant stream")
	flag.Parse()
	if err := runSmoke(*sssjd, *n); err != nil {
		fmt.Fprintf(os.Stderr, "server-smoke: %v\n", err)
		os.Exit(1)
	}
}

// proc is a spawned daemon plus the addresses it bound.
type proc struct {
	cmd     *exec.Cmd
	addr    string
	metrics string
}

// start launches a daemon on 127.0.0.1:0 and scans its stderr for the
// "listening on <addr>" line every daemon logs once bound, plus the
// "metrics on <addr>" line when -metrics is among the args.
func start(bin string, args ...string) (*proc, error) {
	wantMetrics := false
	for _, a := range args {
		if a == "-metrics" {
			wantMetrics = true
		}
	}
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0", "-quiet"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	addrCh := make(chan string, 1)
	metCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			for prefix, ch := range map[string]chan string{
				"listening on ": addrCh,
				"metrics on ":   metCh,
			} {
				if i := strings.Index(line, prefix); i >= 0 {
					rest := line[i+len(prefix):]
					if j := strings.IndexByte(rest, ' '); j >= 0 {
						rest = rest[:j]
					}
					select {
					case ch <- rest:
					default:
					}
				}
			}
		}
		io.Copy(io.Discard, stderr)
	}()
	p := &proc{cmd: cmd}
	deadline := time.After(10 * time.Second)
	select {
	case p.addr = <-addrCh:
	case <-deadline:
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("%s did not report a listen address", bin)
	}
	if wantMetrics {
		select {
		case p.metrics = <-metCh:
		case <-deadline:
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("%s did not report a metrics address", bin)
		}
	}
	return p, nil
}

// stop SIGTERMs the daemon and waits for a clean exit.
func (p *proc) stop() error {
	if p == nil || p.cmd.Process == nil {
		return nil
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(10 * time.Second):
		p.cmd.Process.Kill()
		<-done
		return fmt.Errorf("daemon did not exit on SIGTERM")
	}
}

// genItems derives a deterministic workload: clustered draws from a
// small vocabulary so real matches occur, strictly increasing times.
func genItems(seed int64, n int) []stream.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]stream.Item, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		nnz := 1 + rng.Intn(4)
		dims := map[uint32]float64{}
		for len(dims) < nnz {
			dims[uint32(rng.Intn(20))] = 0.1 + rng.Float64()
		}
		var ds []uint32
		var vs []float64
		for d := uint32(0); d < 20; d++ {
			if v, ok := dims[d]; ok {
				ds = append(ds, d)
				vs = append(vs, v)
			}
		}
		t += rng.Float64()
		items = append(items, stream.Item{ID: uint64(i), Time: t, Vec: vec.MustNew(ds, vs).Normalize()})
	}
	return items
}

func dial(addr string) (*server.Client, error) {
	return server.Dialer{DialTimeout: 2 * time.Second, IOTimeout: 30 * time.Second, Retries: 5}.Dial(addr)
}

// feed streams items[from:to] on an already-attached connection and
// returns the reported matches. Under the foreign join, odd positions
// go to stream B; side is the connection's current side, carried across
// calls so a resumed feed re-establishes it after reconnecting.
func feed(c *server.Client, items []stream.Item, from, to int, foreign bool, side *apss.Side) ([]apss.Match, error) {
	var all []apss.Match
	for i := from; i < to; i++ {
		if foreign {
			want := apss.SideA
			if i%2 == 1 {
				want = apss.SideB
			}
			if want != *side {
				if err := c.Side(want); err != nil {
					return nil, err
				}
				*side = want
			}
		}
		_, ms, err := c.Add(items[i].Time, items[i].Vec)
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
		all = append(all, ms...)
	}
	return all, nil
}

// scrape fetches the Prometheus endpoint and checks that every tenant
// session is reporting.
func scrape(metricsAddr string, halfway map[string]int) error {
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics returned %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		return fmt.Errorf("/metrics Content-Type = %q, want the Prometheus text format", ct)
	}
	text := string(body)
	for name, items := range halfway {
		up := fmt.Sprintf(`sssj_session_up{session=%q} 1`, name)
		if !strings.Contains(text, up) {
			return fmt.Errorf("scrape is missing %s", up)
		}
		counted := fmt.Sprintf(`sssj_items_total{session=%q} %d`, name, items)
		if !strings.Contains(text, counted) {
			return fmt.Errorf("scrape is missing %s", counted)
		}
	}
	return nil
}

// runSmoke is the whole scenario: one multi-tenant daemon + one
// migration target + one single-tenant reference daemon per session.
func runSmoke(sssjd string, n int) error {
	var procs []*proc
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()

	// The shared daemon hosts every tenant; daemon B adopts the
	// migrated session mid-stream.
	shared, err := start(sssjd, "-metrics", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("shared daemon: %w", err)
	}
	procs = append(procs, shared)
	target, err := start(sssjd)
	if err != nil {
		return fmt.Errorf("migration target: %w", err)
	}
	procs = append(procs, target)

	streams := map[string][]stream.Item{}
	conns := map[string]*server.Client{}
	sides := map[string]*apss.Side{}
	got := map[string][]apss.Match{}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for _, tn := range tenants {
		streams[tn.name] = genItems(tn.seed, n)
		c, err := dial(shared.addr)
		if err != nil {
			return err
		}
		conns[tn.name] = c
		if err := c.Session(tn.name, tn.opts...); err != nil {
			return fmt.Errorf("SESSION %s: %w", tn.name, err)
		}
		side := apss.SideA
		sides[tn.name] = &side
	}

	// First half of every stream goes to the shared daemon.
	half := n / 2
	halfway := map[string]int{}
	for _, tn := range tenants {
		ms, err := feed(conns[tn.name], streams[tn.name], 0, half, tn.foreign, sides[tn.name])
		if err != nil {
			return fmt.Errorf("%s first half: %w", tn.name, err)
		}
		got[tn.name] = ms
		halfway[tn.name] = half
	}

	// Scrape with every session half-fed: the endpoint must report each
	// tenant by name with its exact item count.
	if err := scrape(shared.metrics, halfway); err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	fmt.Printf("server-smoke: /metrics OK (%d sessions reporting at %d items each)\n", len(tenants), half)

	// Live-migrate one session, then finish every stream — the migrated
	// tenant on daemon B, the rest where they started.
	if err := conns[migrateTenant].Migrate(target.addr); err != nil {
		return fmt.Errorf("MIGRATE %s: %w", migrateTenant, err)
	}
	conns[migrateTenant].Close()
	mc, err := dial(target.addr)
	if err != nil {
		return err
	}
	conns[migrateTenant] = mc
	if err := mc.Session(migrateTenant); err != nil {
		return fmt.Errorf("attach after migration: %w", err)
	}
	fmt.Printf("server-smoke: migrated %q to %s at item %d\n", migrateTenant, target.addr, half)

	for _, tn := range tenants {
		foreign := tn.foreign
		// A fresh connection starts on side A; force re-sync after the
		// migration reconnect.
		if tn.name == migrateTenant {
			side := apss.SideA
			sides[tn.name] = &side
		}
		ms, err := feed(conns[tn.name], streams[tn.name], half, n, foreign, sides[tn.name])
		if err != nil {
			return fmt.Errorf("%s second half: %w", tn.name, err)
		}
		got[tn.name] = append(got[tn.name], ms...)
		st, err := conns[tn.name].StatsJSON()
		if err != nil {
			return err
		}
		if st.Items != int64(n) {
			return fmt.Errorf("%s counted %d items, fed %d", tn.name, st.Items, n)
		}
	}

	// Reference: one dedicated single-tenant daemon per session, fed the
	// identical stream in one uninterrupted run.
	for _, tn := range tenants {
		ref, err := start(sssjd, tn.refArgs...)
		if err != nil {
			return fmt.Errorf("reference daemon for %s: %w", tn.name, err)
		}
		procs = append(procs, ref)
		rc, err := dial(ref.addr)
		if err != nil {
			return err
		}
		side := apss.SideA
		want, err := feed(rc, streams[tn.name], 0, n, tn.foreign, &side)
		rc.Close()
		if err != nil {
			return fmt.Errorf("%s reference stream: %w", tn.name, err)
		}
		if len(want) == 0 {
			return fmt.Errorf("%s reference run found no matches; smoke test vacuous", tn.name)
		}
		if !apss.EqualMatchSets(got[tn.name], want, 0) {
			return fmt.Errorf("%s: multi-tenant run reported %d matches, single-tenant %d — outputs differ",
				tn.name, len(got[tn.name]), len(want))
		}
		fmt.Printf("server-smoke: %s OK (%d matches ≡ single-tenant daemon, %d items)\n",
			tn.name, len(want), n)
	}

	for _, c := range conns {
		c.Close()
	}
	conns = map[string]*server.Client{}
	for _, p := range procs {
		if err := p.stop(); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	procs = nil
	return nil
}
