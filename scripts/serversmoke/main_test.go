package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"reflect"
	"strings"
	"testing"

	"sssj/internal/apss"
	"sssj/internal/server"
)

// TestRunSmokeEndToEnd builds the real sssjd binary and runs the whole
// smoke scenario — 3 tenant sessions, the /metrics scrape, and the
// mid-stream migration — exactly as `make server-smoke` does, on a
// reduced stream.
func TestRunSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots real daemon processes")
	}
	bin := t.TempDir() + "/sssjd"
	build := exec.Command("go", "build", "-o", bin, "sssj/cmd/sssjd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	if err := runSmoke(bin, 80); err != nil {
		t.Fatal(err)
	}
}

// TestGenItems: the workload is deterministic, time-ordered, and
// normalized — the properties the parity comparison rests on.
func TestGenItems(t *testing.T) {
	a := genItems(7, 50)
	b := genItems(7, 50)
	if len(a) != 50 {
		t.Fatalf("generated %d items", len(a))
	}
	for i := range a {
		if a[i].Time != b[i].Time || !reflect.DeepEqual(a[i].Vec, b[i].Vec) {
			t.Fatalf("item %d not deterministic", i)
		}
		if !a[i].Vec.IsUnit(1e-9) {
			t.Fatalf("item %d not unit-normalized", i)
		}
		if i > 0 && a[i].Time <= a[i-1].Time {
			t.Fatalf("times not strictly increasing at %d", i)
		}
	}
}

// TestFeedAgainstLiveServer drives feed (sided and unsided) against an
// in-process server, checking the carried side state across a resumed
// feed — the exact shape the migration path uses.
func TestFeedAgainstLiveServer(t *testing.T) {
	for _, foreign := range []bool{false, true} {
		srv, err := server.New(server.Config{
			Params:  apss.Params{Theta: 0.6, Lambda: 0.05},
			Foreign: foreign,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)

		items := genItems(7, 40)
		c, err := dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		side := apss.SideA
		first, err := feed(c, items, 0, 20, foreign, &side)
		if err != nil {
			t.Fatal(err)
		}
		rest, err := feed(c, items, 20, 40, foreign, &side)
		if err != nil {
			t.Fatal(err)
		}
		got := append(first, rest...)

		// Reference: the same stream in one uninterrupted feed.
		srv2, err := server.New(server.Config{
			Params:  apss.Params{Theta: 0.6, Lambda: 0.05},
			Foreign: foreign,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln2, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv2.Serve(ln2)
		c2, err := dial(ln2.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		side2 := apss.SideA
		want, err := feed(c2, items, 0, 40, foreign, &side2)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 || !apss.EqualMatchSets(got, want, 0) {
			t.Fatalf("foreign=%v: split feed %d matches, whole feed %d", foreign, len(got), len(want))
		}
		c.Close()
		c2.Close()
		srv.Close()
		srv2.Close()
	}
}

// TestScrape checks the /metrics assertions against a real handler fed
// through real sessions, and the failure modes against canned bodies.
func TestScrape(t *testing.T) {
	srv, err := server.New(server.Config{Params: apss.Params{Theta: 0.7, Lambda: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	c, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Session("tenant", "theta=0.7", "lambda=0.1"); err != nil {
		t.Fatal(err)
	}
	items := genItems(3, 5)
	side := apss.SideA
	if _, err := feed(c, items, 0, 5, false, &side); err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.MetricsHandler())
	defer hs.Close()
	host := strings.TrimPrefix(hs.URL, "http://")
	if err := scrape(host, map[string]int{"tenant": 5}); err != nil {
		t.Fatalf("scrape of a live handler: %v", err)
	}
	// Wrong item count must be detected.
	if err := scrape(host, map[string]int{"tenant": 99}); err == nil {
		t.Fatal("scrape accepted a wrong item count")
	}
	// Missing session must be detected.
	if err := scrape(host, map[string]int{"ghost": 0}); err == nil {
		t.Fatal("scrape accepted a missing session")
	}

	// A scrape without the Prometheus content type must be rejected.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `sssj_session_up{session="tenant"} 1`)
	}))
	defer plain.Close()
	if err := scrape(strings.TrimPrefix(plain.URL, "http://"), map[string]int{}); err == nil {
		t.Fatal("scrape accepted a non-Prometheus content type")
	}
}
