package sssj

import (
	"net"
	"testing"

	"sssj/internal/apss"
	"sssj/internal/server"
	"sssj/internal/vec"
)

// FuzzSessionProtocol drives a live multi-tenant server with random
// interleavings of SESSION / ADD / STATS / SESSIONS / SIZE across
// several connections. The fuzz bytes decode to (connection, op, arg)
// triples; the oracle is per-session accounting: whatever the
// interleaving, the server must never panic, never desynchronize a
// connection, and every session's final item count must equal exactly
// the adds accepted on it — no item may leak into, or be counted by,
// another session.
func FuzzSessionProtocol(f *testing.F) {
	// Seeds: create/attach/add on one session; two sessions interleaved
	// across connections; a lateness session plus listing and stats ops.
	f.Add([]byte("\x00\x00\x04\x00\x01\x10\x00\x01\x20\x00\x02\x00"))
	f.Add([]byte("\x00\x00\x00\x01\x00\x05\x00\x01\x08\x01\x01\x09\x02\x01\x07\x00\x03\x00\x01\x02\x00"))
	f.Add([]byte("\x01\x00\x03\x01\x01\x40\x01\x04\x00\x02\x00\x03\x02\x01\x41\x01\x02\x00\x00\x03\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		srv, err := server.New(server.Config{Params: apss.Params{Theta: 0.7, Lambda: 0.1}})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		addr := ln.Addr().String()

		const nconn = 3
		var conns [nconn]*server.Client
		dial := func(i int) *server.Client {
			if conns[i] == nil {
				c, err := server.Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				conns[i] = c
			}
			return conns[i]
		}
		defer func() {
			for _, c := range conns {
				if c != nil {
					c.Close()
				}
			}
		}()

		names := []string{"s0", "s1", "s2", "s3"}
		attached := [nconn]string{server.DefaultSession, server.DefaultSession, server.DefaultSession}
		clock := map[string]float64{} // per-session monotonic test clock
		accepted := map[string]int{}  // adds acknowledged per session
		lateness := map[string]bool{} // sessions created with a reorder stage

		for i := 0; i+2 < len(data); i += 3 {
			ci := int(data[i]) % nconn
			op := data[i+1] % 5
			arg := data[i+2]
			c := dial(ci)
			switch op {
			case 0: // create a session (or attach, if the name is taken)
				name := names[int(arg)%len(names)]
				theta := []string{"0.5", "0.7", "0.9"}[int(arg>>2)%3]
				opts := []string{"theta=" + theta, "lambda=0.1"}
				late := arg&1 == 1
				if late {
					opts = append(opts, "lateness=2")
				}
				if err := c.Session(name, opts...); err != nil {
					// Name taken: attaching must always work.
					if err := c.Session(name); err != nil {
						t.Fatalf("attach %q: %v", name, err)
					}
				} else {
					lateness[name] = late
				}
				attached[ci] = name
			case 1: // add an item on the attached session
				name := attached[ci]
				clock[name] += float64(arg) / 64
				v := vec.MustNew(
					[]uint32{uint32(arg % 8), uint32(arg%8) + 1},
					[]float64{1, 0.1 + float64(arg)/255},
				).Normalize()
				if _, _, err := c.Add(clock[name], v); err != nil {
					// The test clock never goes backwards, so every add is
					// admissible — an error here is a protocol break.
					t.Fatalf("add on %q at t=%v: %v", name, clock[name], err)
				}
				accepted[name]++
			case 2: // counters must stay decodable mid-interleaving
				if _, err := c.StatsJSON(); err != nil {
					t.Fatalf("stats on %q: %v", attached[ci], err)
				}
			case 3: // listing never desynchronizes the connection
				if _, err := c.Sessions(); err != nil {
					t.Fatalf("sessions: %v", err)
				}
			case 4: // occupancy probe (also refreshes the size sample)
				if _, err := c.Size(); err != nil {
					t.Fatalf("size on %q: %v", attached[ci], err)
				}
			}
		}

		// Oracle: per-session item counts match the accepted adds exactly.
		check, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer check.Close()
		for name, want := range accepted {
			if err := check.Session(name); err != nil {
				t.Fatalf("final attach %q: %v", name, err)
			}
			if lateness[name] {
				// Release anything still buffered in the reorder stage.
				if _, _, err := check.Watermark(clock[name] + 1e6); err != nil {
					t.Fatalf("drain %q: %v", name, err)
				}
			}
			st, err := check.StatsJSON()
			if err != nil {
				t.Fatalf("final stats %q: %v", name, err)
			}
			if st.Items != int64(want) {
				t.Fatalf("session %q counted %d items, accepted %d — cross-session contamination",
					name, st.Items, want)
			}
		}
	})
}
