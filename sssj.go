// Package sssj implements streaming similarity self-join: finding, in an
// unbounded stream of timestamped sparse vectors, all pairs whose
// time-dependent cosine similarity
//
//	sim(x, y) = dot(x, y) · exp(-λ·|t(x)−t(y)|)
//
// reaches a threshold θ. It is a from-scratch reproduction of
// "Streaming Similarity Self-Join" (De Francisci Morales & Gionis,
// VLDB 2016), including both of the paper's frameworks — Streaming (STR)
// and MiniBatch (MB) — and all of its indexing schemes (INV, AP, L2AP, and
// the paper's streaming-optimized L2 index).
//
// # Quick start
//
// The join is push-based: matches flow to the consumer the moment they
// are verified. The range-over-func iterator is the idiomatic surface:
//
//	for m, err := range sssj.Matches(ctx, sssj.Options{Theta: 0.7, Lambda: 0.01}, src) {
//	    if err != nil { ... }
//	    ... // breaking out stops the join
//	}
//
// For item-at-a-time control, feed a Joiner and receive matches through
// a MatchSink (ProcessTo) or as slices (Process):
//
//	j, err := sssj.New(sssj.Options{Theta: 0.7, Lambda: 0.01})
//	if err != nil { ... }
//	for item := range input {
//	    err := j.ProcessTo(item, func(m sssj.Match) error { ...; return nil })
//	    ...
//	}
//	err = j.FlushTo(sink)
//
// The default configuration (STR framework, L2 index) is the paper's
// recommended, most scalable combination.
//
// Beyond the paper's self-join, the same engines run a two-stream
// foreign join A ⋈ B (probes from one stream match only items of the
// other); see JoinMode and ForeignJoiner.
package sssj

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"sssj/internal/apss"
	"sssj/internal/core"
	"sssj/internal/dimorder"
	"sssj/internal/index/static"
	"sssj/internal/index/streaming"
	"sssj/internal/metrics"
	"sssj/internal/stream"
	"sssj/internal/vec"
)

// Re-exported core types. Vector is a sparse vector with sorted
// dimensions; Item is a timestamped vector; Match is a reported similar
// pair; Params bundles (θ, λ); Stats carries operation counters; Source
// yields stream items; Kernel generalizes the decay function; Side tags
// an item's input stream for the two-stream (foreign) join.
type (
	Vector = vec.Vector
	Item   = stream.Item
	Match  = apss.Match
	Params = apss.Params
	Stats  = metrics.Counters
	Source = stream.Source
	Kernel = apss.Kernel
	Side   = apss.Side
)

// The two sides of a foreign join (see Side and ForeignJoiner). The
// zero value is SideA, so untagged items of a self-join all share one
// side.
const (
	SideA = apss.SideA
	SideB = apss.SideB
)

// Decay kernels (see Kernel). Exponential is the paper's definition and
// the default; the others are extensions.
type (
	Exponential   = apss.Exponential
	SlidingWindow = apss.SlidingWindow
	Polynomial    = apss.Polynomial
)

// Framework selects between the paper's two algorithmic frameworks.
type Framework int

// Frameworks.
const (
	// Streaming (STR, Algorithm 5) maintains one incremental index with
	// time filtering built in and reports matches online. The paper's
	// recommendation.
	Streaming Framework = iota
	// MiniBatch (MB, Algorithm 1) indexes τ-length windows with a batch
	// index used as a black box; matches are reported with up to 2τ
	// delay.
	MiniBatch
)

// String implements fmt.Stringer.
func (f Framework) String() string {
	switch f {
	case Streaming:
		return "STR"
	case MiniBatch:
		return "MB"
	default:
		return fmt.Sprintf("Framework(%d)", int(f))
	}
}

// IndexKind selects an indexing scheme.
type IndexKind int

// Index kinds.
const (
	// IndexL2 is the paper's contribution (§5.4): ℓ2-only bounds, no
	// global statistics, no re-indexing. The recommended default.
	IndexL2 IndexKind = iota
	// IndexINV is the plain inverted index with no residual filtering.
	IndexINV
	// IndexL2AP is the streaming adaptation of Anastasiu & Karypis's
	// L2AP, combining the AP and ℓ2 bounds.
	IndexL2AP
	// IndexAP is Bayardo et al.'s scheme; supported only under MiniBatch
	// (§5.2: its streaming version is not efficient in practice).
	IndexAP
	// IndexAuto lets the joiner pick the scheme online: it starts on the
	// cheap INV index and promotes toward L2 and L2AP when windowed work
	// counters say the filtering machinery would pay for itself. The
	// promotion ladder is monotone (it never demotes, so it cannot
	// thrash) and the reported pair set is identical to any fixed
	// scheme's. Streaming framework with the decay window only; see
	// Options.Adaptive for the companion re-ranker and the review
	// cadence.
	IndexAuto
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case IndexL2:
		return "L2"
	case IndexINV:
		return "INV"
	case IndexL2AP:
		return "L2AP"
	case IndexAP:
		return "AP"
	case IndexAuto:
		return "auto"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// JoinMode selects which pairs of the stream a joiner reports.
type JoinMode int

// Join modes.
const (
	// JoinSelf is the paper's streaming similarity self-join: every
	// in-horizon pair above θ is reported, regardless of item sides.
	// The default.
	JoinSelf JoinMode = iota
	// JoinForeign is the two-stream foreign join A ⋈ B: every item
	// carries a Side tag and only cross-side pairs are reported. On an
	// interleaved stream it produces exactly the side-filtered self-join
	// — same pairs, bit-identical similarities — while skipping the
	// candidate work for same-side pairs. See ForeignJoiner for the
	// two-stream entry points.
	JoinForeign
)

// String implements fmt.Stringer.
func (m JoinMode) String() string {
	switch m {
	case JoinSelf:
		return "self"
	case JoinForeign:
		return "foreign"
	default:
		return fmt.Sprintf("JoinMode(%d)", int(m))
	}
}

// ErrUnsupported reports an Options combination outside the support
// matrix of the operator it was handed to (see the decision table in
// Options.validate).
var ErrUnsupported = errors.New("sssj: unsupported option combination")

// ErrTimeRegression reports an item whose timestamp falls strictly
// behind the joiner's event-time watermark. With Options.Lateness zero
// (the default) the watermark is simply the latest timestamp seen, so
// this is the classic "timestamps must be non-decreasing" rejection;
// with Lateness δ > 0 items may arrive up to δ out of order and only
// items later than that are rejected. The offending item never touches
// the index and the joiner remains usable.
//
// The concrete error is a *TimeRegressionError carrying the item's
// timestamp and the watermark it fell behind; errors.Is(err,
// ErrTimeRegression) holds for it.
var ErrTimeRegression = errors.New("sssj: timestamps must be non-decreasing")

// TimeRegressionError is the structured form of ErrTimeRegression: the
// rejected item's identity, its timestamp, and the event-time watermark
// it arrived behind (watermark = latest time seen − Options.Lateness,
// per side under the foreign join). errors.Is against ErrTimeRegression
// matches it; errors.As extracts the fields. Each rejection is also
// counted in Stats.LateDrops.
type TimeRegressionError struct {
	// ID is the rejected item's identifier.
	ID uint64
	// Time is the rejected item's timestamp.
	Time float64
	// Watermark is the event-time watermark Time fell strictly behind.
	Watermark float64
}

// Error implements error.
func (e *TimeRegressionError) Error() string {
	return fmt.Sprintf("%v: item %d at t=%v behind watermark t=%v",
		ErrTimeRegression, e.ID, e.Time, e.Watermark)
}

// Unwrap makes errors.Is(err, ErrTimeRegression) hold.
func (e *TimeRegressionError) Unwrap() error { return ErrTimeRegression }

// Options is the single configuration surface shared by every operator
// in the package: the streaming threshold join (New), the top-k
// neighborhood join (NewTopK), the static batch join (BatchJoin), and
// checkpoint restore (Resume). Theta and Lambda are required by the
// streaming operators; everything else defaults to the paper's
// recommended setup (STR framework, L2 index, exponential decay). Each
// operator validates the combination against one shared decision table
// and reports unsupported ones with ErrUnsupported.
type Options struct {
	// Theta is the similarity threshold θ in (0, 1].
	Theta float64
	// Lambda is the time-decay factor λ > 0. Together they fix the time
	// horizon τ = ln(1/θ)/λ beyond which pairs can never match.
	Lambda float64
	// Framework selects STR (default) or MB.
	Framework Framework
	// Index selects the indexing scheme (default IndexL2).
	Index IndexKind
	// Kernel overrides exponential decay (extension). Only STR with
	// IndexINV or IndexL2 supports non-exponential kernels.
	Kernel Kernel
	// Stats, when non-nil, receives operation counters.
	Stats *Stats
	// DimOrder enables the dimension-ordering extension (the paper's
	// suggested future work). Under MiniBatch, each window's batch index
	// orders dimensions by the chosen strategy; under Streaming, a
	// permutation is learned from the first WarmupItems items and applied
	// thereafter (matches among warmup items are delayed until the
	// warmup closes). The zero value keeps natural order, as in the
	// paper.
	DimOrder DimOrder
	// Workers selects the sharded parallel Streaming engine: the
	// dimension space is partitioned across Workers shards, each owning
	// the posting lists for its dimensions; Process fans candidate
	// generation out to the shards and verifies the merged candidates
	// concurrently, producing the same match set as the sequential
	// engine. Values ≤ 1 (the default) run the paper's sequential
	// engine. Only the Streaming framework supports Workers > 1;
	// MiniBatch returns ErrUnsupported.
	Workers int
	// K is the neighborhood size of the top-k join (NewTopK); it must be
	// 0 for every other operator. The NewTopK k parameter is shorthand
	// for setting this field.
	K int
	// Join selects the self-join (default) or the two-stream foreign
	// join (see JoinMode). Under JoinForeign every processed Item must
	// carry its Side tag; the ForeignJoiner wrapper and the Foreign*
	// entry points manage the tagging for you. Supported by both
	// frameworks, all indexes, Workers, DimOrder, custom kernels, and
	// Resume; the batch join and the top-k join reject it (BatchJoin's
	// vector input carries no sides, and a one-sided neighborhood is not
	// yet defined).
	Join JoinMode
	// Lateness is the bounded event-time lateness δ ≥ 0 (default 0). With
	// δ > 0, items may arrive up to δ out of timestamp order: the joiner
	// buffers them in a reorder stage and releases them in event-time
	// order once the watermark (latest time seen − δ) passes them, so the
	// match set is bit-identical to the one a perfectly ordered stream
	// would produce. Items arriving strictly behind the watermark are
	// rejected with ErrTimeRegression (a *TimeRegressionError) and counted
	// in Stats.LateDrops. With δ = 0 (the default) the strict
	// non-decreasing contract applies unchanged, at no buffering cost.
	// Under the foreign join each side keeps its own event-time clock and
	// the watermark is the older of the two, so one stream may run ahead
	// of the other by more than δ without losing items. Supported by the
	// streaming operators and Resume; the batch and top-k joins reject a
	// nonzero δ.
	Lateness float64
	// Window selects the join's window semantics (default: the paper's
	// exponential-decay model). See Window and WindowKind for the
	// tumbling and sliding modes and their support matrix.
	Window Window
	// Adaptive enables the statistics-free self-tuning extension: an
	// online dimension re-ranker and/or the engine auto-selector (also
	// reachable as Index: IndexAuto). Streaming framework with the decay
	// window and the default kernel only; Workers, the foreign join,
	// Lateness, and Resume all compose. The zero value disables it. See
	// the Adaptive type.
	Adaptive Adaptive
}

// WindowKind selects the event-time window semantics of the streaming
// join.
type WindowKind int

// Window kinds.
const (
	// WindowDecay is the paper's model and the default: similarity decays
	// continuously with the pair's time gap, sim = dot · Kernel(Δt).
	WindowDecay WindowKind = iota
	// WindowTumbling cuts the stream into disjoint windows of length
	// Size, anchored at the first item, and reports every pair inside a
	// window with dot ≥ θ when the window closes (Sim is the raw dot; no
	// decay). Matches are delayed up to one window. Runs on any batch
	// index kind; Workers > 1 and DimOrder are rejected.
	WindowTumbling
	// WindowSliding reports every pair at most Size apart with dot ≥ θ,
	// fully online (Sim is the raw dot; no decay) — the classic
	// sliding-window join, realized as the streaming framework over the
	// hard-window kernel. IndexINV and IndexL2 only (the L2AP m̂λ bound
	// needs exponential decay); Workers, DimOrder, and the foreign join
	// all compose.
	WindowSliding
)

// String implements fmt.Stringer.
func (k WindowKind) String() string {
	switch k {
	case WindowDecay:
		return "decay"
	case WindowTumbling:
		return "tumbling"
	case WindowSliding:
		return "sliding"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(k))
	}
}

// Window configures the window semantics of the join (see WindowKind).
// The zero value is the paper's decay model. For the tumbling and
// sliding kinds, Size is the window length in stream time units and
// must be positive and finite; Lambda may be left zero (the window
// defines the horizon) and Kernel must be nil (the window defines the
// kernel). Window modes run under the Streaming framework's operator
// surface (New, Join, Matches and friends) only.
type Window struct {
	// Kind selects the semantics (default WindowDecay).
	Kind WindowKind
	// Size is the window length; required > 0 for the tumbling and
	// sliding kinds, required 0 for WindowDecay.
	Size float64
}

// Adaptive configures the statistics-free self-tuning extension. Unlike
// DimOrder — which buffers a warmup, delays its matches, and then fixes
// the permutation forever — the adaptive layer never buffers and never
// delays: it maintains per-dimension frequency and max-value counters
// online, periodically recomputes the ranking, and rebuilds the live
// window (bounded by the horizon) under the new permutation. Engine
// selection works the same way, promoting INV → L2 → L2AP from cheap
// work counters with hysteresis. Both adaptations are output-invisible:
// the reported pair set is always exactly the static configuration's.
type Adaptive struct {
	// Rerank selects the dimension ordering maintained online; OrderNone
	// (the default) leaves natural order.
	Rerank DimStrategy
	// Cadence is how many processed items pass between adaptation
	// reviews. Values < 1 use the package default (2048); setting it
	// without enabling Rerank or Auto (or IndexAuto) is rejected.
	Cadence int
	// Auto enables the engine selector, starting from Options.Index.
	// Index: IndexAuto is shorthand for Auto from the INV floor.
	Auto bool
}

// enabled reports whether the struct itself switches any adaptation on
// (Index: IndexAuto also enables the layer; callers check both).
func (a Adaptive) enabled() bool { return a.Auto || a.Rerank != OrderNone }

// DimOrder configures the dimension-ordering extension.
type DimOrder struct {
	// Strategy ranks dimensions; OrderNone disables the extension.
	Strategy DimStrategy
	// WarmupItems is how many leading stream items the Streaming
	// framework learns the permutation from (ignored by MiniBatch,
	// which learns from each full window). Required > 0 when Strategy
	// is set under Streaming.
	WarmupItems int
}

// DimStrategy ranks dimensions for the ordering extension.
type DimStrategy = dimorder.Strategy

// Ordering strategies.
const (
	// OrderNone keeps natural dimension order (the paper's setting).
	OrderNone = dimorder.None
	// OrderDocFreqAsc puts rare dimensions in the unindexed prefix.
	OrderDocFreqAsc = dimorder.DocFreqAsc
	// OrderMaxValueDesc front-loads large-valued dimensions.
	OrderMaxValueDesc = dimorder.MaxValueDesc
)

// opMode names the operator consuming an Options value. The validate
// decision table keys support on it.
type opMode int

const (
	opStream opMode = iota // New: streaming threshold join
	opTopK                 // NewTopK: bounded-neighborhood join
	opBatch                // BatchJoin: static all-pairs search
	opResume               // Resume: restore from a checkpoint
)

// validate is the single support decision table behind ErrUnsupported.
// Every operator taking Options funnels through it, so the support
// matrix lives in exactly one place:
//
//	               STR                MB            batch     resume
//	INV            yes                yes           yes       yes
//	L2             yes (default)      yes           yes       yes
//	L2AP           yes                yes           yes       yes
//	AP             no (§5.2)          yes           yes       no (§5.2)
//	custom Kernel  INV/L2 any; L2AP   no            no        as STR
//	               exponential only
//	Workers > 1    yes                no            no        yes
//	DimOrder       warmup (STR) /     per window    strategy  no
//	               needs WarmupItems                only
//	K              top-k only (>= 1); 0 elsewhere
//	Join foreign   yes                yes           no        yes
//	               (top-k: no)
//	Lateness > 0   yes                yes           no        yes
//	Window         tumbling: any index, workers 1, no DimOrder, no kernel
//	               sliding:  INV/L2 under STR; workers, DimOrder, foreign OK
//	               stream op only (top-k, batch, and resume reject both kinds)
//	Adaptive /     STR + decay window + default kernel only; workers,
//	IndexAuto      foreign, Lateness, resume OK; excludes DimOrder (it
//	               subsumes it); top-k and batch reject it
//
// Batch ignores Framework, Theta, and Lambda (the threshold is an
// explicit argument and there is no time); Resume ignores Index, Theta,
// and Lambda (they come from the checkpoint itself).
func (o Options) validate(mode opMode) error {
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers must be >= 0, got %d", ErrUnsupported, o.Workers)
	}
	switch o.Join {
	case JoinSelf:
	case JoinForeign:
		if mode == opBatch {
			return fmt.Errorf("%w: the batch join's vector input carries no sides; use the streaming foreign join", ErrUnsupported)
		}
		if mode == opTopK {
			return fmt.Errorf("%w: top-k neighborhoods are not defined for the foreign join", ErrUnsupported)
		}
	default:
		return fmt.Errorf("%w: unknown join mode %v", ErrUnsupported, o.Join)
	}
	if mode == opTopK && o.K < 1 {
		return fmt.Errorf("%w: top-k needs K >= 1, got %d", ErrUnsupported, o.K)
	}
	if mode != opTopK && o.K != 0 {
		return fmt.Errorf("%w: K is the top-k neighborhood size; use NewTopK", ErrUnsupported)
	}
	if o.Lateness < 0 || math.IsNaN(o.Lateness) || math.IsInf(o.Lateness, 0) {
		return fmt.Errorf("%w: Lateness must be finite and >= 0, got %v", ErrUnsupported, o.Lateness)
	}
	if o.Lateness > 0 && (mode == opTopK || mode == opBatch) {
		return fmt.Errorf("%w: Lateness applies to the streaming joins only", ErrUnsupported)
	}
	switch o.Window.Kind {
	case WindowDecay:
		if o.Window.Size != 0 {
			return fmt.Errorf("%w: Window.Size is set but Window.Kind is the decay default", ErrUnsupported)
		}
	case WindowTumbling, WindowSliding:
		if !(o.Window.Size > 0) || math.IsInf(o.Window.Size, 1) {
			return fmt.Errorf("%w: %v window needs finite Size > 0, got %v", ErrUnsupported, o.Window.Kind, o.Window.Size)
		}
		if mode != opStream {
			return fmt.Errorf("%w: window modes exist only for the streaming threshold join", ErrUnsupported)
		}
		if o.Framework != Streaming {
			return fmt.Errorf("%w: window modes run on the Streaming operator surface (MiniBatch has its own windows)", ErrUnsupported)
		}
		if o.Kernel != nil {
			return fmt.Errorf("%w: a window mode defines its own kernel", ErrUnsupported)
		}
		if o.Window.Kind == WindowSliding {
			if o.Index != IndexINV && o.Index != IndexL2 {
				return fmt.Errorf("%w: the sliding window runs on IndexINV or IndexL2 (the L2AP m̂λ bound needs exponential decay)", ErrUnsupported)
			}
		} else {
			if o.Workers > 1 {
				return fmt.Errorf("%w: the tumbling window is a per-window batch join; Workers > 1 is not supported", ErrUnsupported)
			}
			if o.DimOrder.Strategy != OrderNone {
				return fmt.Errorf("%w: the tumbling window does not support DimOrder", ErrUnsupported)
			}
		}
	default:
		return fmt.Errorf("%w: unknown window kind %v", ErrUnsupported, o.Window.Kind)
	}
	adaptive := o.Adaptive.enabled() || o.Index == IndexAuto
	if o.Adaptive.Cadence < 0 {
		return fmt.Errorf("%w: Adaptive.Cadence must be >= 0, got %d", ErrUnsupported, o.Adaptive.Cadence)
	}
	if !adaptive && o.Adaptive.Cadence != 0 {
		return fmt.Errorf("%w: Adaptive.Cadence is set but neither Adaptive.Rerank, Adaptive.Auto, nor IndexAuto is enabled", ErrUnsupported)
	}
	if adaptive {
		if mode == opBatch || mode == opTopK {
			return fmt.Errorf("%w: the adaptive layer applies to the streaming threshold join only", ErrUnsupported)
		}
		if o.Framework != Streaming {
			return fmt.Errorf("%w: the adaptive layer requires the Streaming framework", ErrUnsupported)
		}
		if o.Window.Kind != WindowDecay {
			return fmt.Errorf("%w: the adaptive layer runs under the decay window only", ErrUnsupported)
		}
		if o.Kernel != nil {
			return fmt.Errorf("%w: the adaptive layer requires the default exponential kernel (engine promotion to L2AP depends on it)", ErrUnsupported)
		}
		if o.DimOrder.Strategy != OrderNone {
			return fmt.Errorf("%w: Adaptive replaces the DimOrder warmup; configure one or the other", ErrUnsupported)
		}
	}
	switch mode {
	case opBatch:
		switch o.Index {
		case IndexINV, IndexAP, IndexL2AP, IndexL2:
		default:
			return fmt.Errorf("%w: unknown index %v", ErrUnsupported, o.Index)
		}
		if o.Kernel != nil {
			return fmt.Errorf("%w: the batch join has no time axis, so no decay kernel", ErrUnsupported)
		}
		if o.Workers > 1 {
			return fmt.Errorf("%w: Workers > 1 requires the Streaming framework", ErrUnsupported)
		}
		return nil
	case opResume:
		if o.Framework != Streaming {
			return fmt.Errorf("%w: checkpoints exist only for the Streaming framework", ErrUnsupported)
		}
		if o.DimOrder.Strategy != OrderNone {
			return fmt.Errorf("%w: cannot resume into a dimension-ordered index (the checkpoint's residual splits are tied to natural order)", ErrUnsupported)
		}
		return nil
	}
	// opStream and opTopK share the streaming rules.
	switch o.Framework {
	case Streaming:
		switch o.Index {
		case IndexINV, IndexL2AP, IndexL2:
		case IndexAuto: // vetted by the adaptive block above
		case IndexAP:
			// The tumbling window is a per-window batch join, where AP is
			// fine (as under MiniBatch); only the true streaming index
			// lacks it.
			if o.Window.Kind != WindowTumbling {
				return fmt.Errorf("%w: STR-AP (paper §5.2 omits it as impractical)", ErrUnsupported)
			}
		default:
			return fmt.Errorf("%w: unknown index %v", ErrUnsupported, o.Index)
		}
		if o.Kernel != nil && o.Index == IndexL2AP {
			if _, ok := o.Kernel.(Exponential); !ok {
				return fmt.Errorf("%w: STR-L2AP needs exponential decay (the m̂λ bound exploits it), got %T", ErrUnsupported, o.Kernel)
			}
		}
		if o.DimOrder.Strategy != OrderNone {
			if o.DimOrder.WarmupItems < 1 {
				return fmt.Errorf("%w: Streaming DimOrder needs WarmupItems > 0", ErrUnsupported)
			}
			if mode == opTopK {
				return fmt.Errorf("%w: top-k cannot run under a DimOrder warmup (delayed matches would corrupt neighborhood finalization)", ErrUnsupported)
			}
		}
	case MiniBatch:
		if mode == opTopK {
			return fmt.Errorf("%w: top-k requires the Streaming framework", ErrUnsupported)
		}
		switch o.Index {
		case IndexINV, IndexAP, IndexL2AP, IndexL2:
		default:
			return fmt.Errorf("%w: unknown index %v", ErrUnsupported, o.Index)
		}
		if o.Kernel != nil {
			return fmt.Errorf("%w: MB supports only exponential decay", ErrUnsupported)
		}
		if o.Workers > 1 {
			return fmt.Errorf("%w: Workers > 1 requires the Streaming framework", ErrUnsupported)
		}
	default:
		return fmt.Errorf("%w: unknown framework %v", ErrUnsupported, o.Framework)
	}
	return nil
}

// Joiner is a streaming similarity self-join operator. Process and Flush
// must not be called concurrently from multiple goroutines: a stream has
// one arrival order, and the operator advances its clock with each item.
//
// Timestamps must be non-decreasing across Process calls (equal stamps
// are fine). An item that regresses is rejected with ErrTimeRegression
// before it reaches the index — the time-filtering bounds all assume a
// monotone clock — and the joiner remains usable: the offending item is
// simply not part of the stream.
//
// With Options.Workers > 1 the work *inside* each Process call is
// executed by a pool of dimension-sharded workers while preserving the
// sequential engine's match semantics; with Workers ≤ 1 (the default)
// processing is fully sequential, exactly as in the paper.
type Joiner struct {
	inner  core.SinkJoiner
	params Params
	opts   Options
	// reo is the event-time admission stage: with Options.Lateness 0 it
	// is a zero-buffer strict-order check, with δ > 0 a bounded reorder
	// buffer releasing items behind the watermark (see Options.Lateness).
	reo *stream.Reorder
}

// New builds a Joiner.
func New(opts Options) (*Joiner, error) {
	if err := opts.validate(opStream); err != nil {
		return nil, err
	}
	params, err := paramsFor(opts)
	if err != nil {
		return nil, err
	}
	inner, err := buildJoiner(opts, params)
	if err != nil {
		return nil, err
	}
	return &Joiner{inner: inner, params: params, opts: opts, reo: newReorderFor(opts)}, nil
}

// paramsFor derives the effective (θ, λ) of an already-validated
// Options value. Window modes have no decay, so λ may be left zero;
// it is synthesized so the shared Params invariants hold and
// Params.Horizon() equals the window size.
func paramsFor(opts Options) (Params, error) {
	params := Params{Theta: opts.Theta, Lambda: opts.Lambda}
	if opts.Window.Kind != WindowDecay && params.Lambda == 0 {
		if params.Theta == 1 {
			params.Lambda = 1 / opts.Window.Size
		} else {
			params.Lambda = math.Log(1/params.Theta) / opts.Window.Size
		}
	}
	if err := params.Validate(); err != nil {
		return Params{}, err
	}
	return params, nil
}

// newReorderFor builds the joiner's event-time admission stage. The
// foreign join gets per-side clocks only when a reorder window is
// actually open (δ > 0): at δ = 0 the sided watermark would stall on
// the unseen side, while the strict single-clock check is exactly the
// interleaved-stream contract the foreign join documents.
func newReorderFor(opts Options) *stream.Reorder {
	if opts.Join == JoinForeign && opts.Lateness > 0 {
		return stream.NewSidedReorder(opts.Lateness)
	}
	return stream.NewReorder(opts.Lateness)
}

// buildJoiner constructs the framework × index combination of an
// already-validated Options value.
func buildJoiner(opts Options, params Params) (core.SinkJoiner, error) {
	switch opts.Window.Kind {
	case WindowTumbling:
		var kind static.Kind
		switch opts.Index {
		case IndexINV:
			kind = static.INV
		case IndexAP:
			kind = static.AP
		case IndexL2AP:
			kind = static.L2AP
		default:
			kind = static.L2
		}
		return core.NewTumbling(kind, params.Theta, opts.Window.Size, opts.Stats, opts.Join == JoinForeign)
	case WindowSliding:
		// The sliding window is STR over the hard-window kernel: same
		// engine, same bounds, factor 1 inside the window and 0 outside.
		opts.Kernel = SlidingWindow{Tau: opts.Window.Size}
	}
	switch opts.Framework {
	case Streaming:
		var kind streaming.Kind
		switch opts.Index {
		case IndexINV, IndexAuto: // IndexAuto starts at the INV floor
			kind = streaming.INV
		case IndexL2AP:
			kind = streaming.L2AP
		default:
			kind = streaming.L2
		}
		sopts := streaming.Options{
			Counters: opts.Stats,
			Kernel:   opts.Kernel,
			Workers:  opts.Workers,
			Foreign:  opts.Join == JoinForeign,
		}
		if opts.DimOrder.Strategy != OrderNone {
			sopts.Order = streaming.WarmupOrder{
				Strategy: opts.DimOrder.Strategy,
				Items:    opts.DimOrder.WarmupItems,
			}
		}
		if opts.Adaptive.enabled() || opts.Index == IndexAuto {
			sopts.Adapt = streaming.Adapt{
				Rerank:  opts.Adaptive.Rerank,
				Cadence: opts.Adaptive.Cadence,
				Auto:    opts.Adaptive.Auto || opts.Index == IndexAuto,
			}
		}
		return core.NewSTRFull(kind, params, sopts)
	default: // MiniBatch; validate rejected everything else
		var kind static.Kind
		switch opts.Index {
		case IndexINV:
			kind = static.INV
		case IndexAP:
			kind = static.AP
		case IndexL2AP:
			kind = static.L2AP
		default:
			kind = static.L2
		}
		var mbOpts []core.MBOption
		if opts.DimOrder.Strategy != OrderNone {
			mbOpts = append(mbOpts, core.WithOrder(opts.DimOrder.Strategy))
		}
		if opts.Join == JoinForeign {
			mbOpts = append(mbOpts, core.WithForeign())
		}
		return core.NewMiniBatch(kind, params, opts.Stats, mbOpts...)
	}
}

// Process feeds the next stream item (timestamps must be non-decreasing;
// see the Joiner contract) and returns the matches reportable so far.
// Under STR all matches involving the new item are returned immediately;
// under MB matches are released at window boundaries.
//
// Process is the collect adapter over ProcessTo: it buffers the matches
// into a fresh slice. Hot paths should prefer ProcessTo, which delivers
// each match as it is verified with no intermediate allocation.
func (j *Joiner) Process(it Item) ([]Match, error) {
	var out []Match
	err := j.ProcessTo(it, apss.Collector(&out))
	return out, err
}

// Flush releases matches still buffered at end of stream (MB windows,
// STR dimension-ordering warmups; a no-op otherwise). It is the collect
// adapter over FlushTo.
func (j *Joiner) Flush() ([]Match, error) {
	var out []Match
	err := j.FlushTo(apss.Collector(&out))
	return out, err
}

// Params returns the join parameters.
func (j *Joiner) Params() Params { return j.params }

// Options returns the effective configuration the joiner runs with.
func (j *Joiner) Options() Options { return j.opts }

// IndexSize reports current index occupancy: live posting entries,
// residual vectors, and non-empty posting lists. It is the quantity the
// time-filtering property keeps bounded (§3). ok is false under the
// MiniBatch framework, which buffers windows instead of maintaining one
// index.
type IndexSize = streaming.SizeInfo

// IndexSize implements the accessor described on the IndexSize type.
func (j *Joiner) IndexSize() (IndexSize, bool) {
	s, ok := j.inner.(*core.STR)
	if !ok {
		return IndexSize{}, false
	}
	return s.IndexSize(), true
}

// AdaptState is the self-tuner's introspection surface: the engine kind
// currently in force and the adaptation counts. See Joiner.AdaptState.
type AdaptState = streaming.AdaptState

// AdaptState reports the self-tuning layer's current state — which
// engine is running, how many dimension re-ranks and engine promotions
// have happened. ok is false when the joiner is not adaptive (no
// Options.Adaptive features and not IndexAuto).
func (j *Joiner) AdaptState() (AdaptState, bool) {
	s, ok := j.inner.(*core.STR)
	if !ok {
		return AdaptState{}, false
	}
	return s.AdaptInfo()
}

// Horizon returns the time horizon τ = ln(1/θ)/λ.
func (j *Joiner) Horizon() float64 { return horizonFor(j.opts, j.params) }

// horizonFor is the one place the kernel-vs-params horizon rule lives:
// a window mode's horizon is the window size, a custom kernel defines
// its own horizon, otherwise τ = ln(1/θ)/λ. Both the threshold join and
// top-k finalization derive from it.
func horizonFor(opts Options, params Params) float64 {
	if opts.Window.Kind != WindowDecay {
		return opts.Window.Size
	}
	if opts.Kernel != nil {
		return opts.Kernel.Horizon(params.Theta)
	}
	return params.Horizon()
}

// Join drains a source through a fresh Joiner and returns all matches.
// It is the collect adapter over JoinCtx; prefer JoinCtx (or Matches)
// when the result set is large or the consumer is incremental.
func Join(opts Options, src Source) ([]Match, error) {
	var out []Match
	err := JoinCtx(context.Background(), opts, src, apss.Collector(&out))
	return out, err
}

// SelfJoin runs the join over an in-memory stream.
func SelfJoin(opts Options, items []Item) ([]Match, error) {
	return Join(opts, stream.NewSliceSource(items))
}

// NewVector builds a sparse vector from parallel dimension/value slices
// (sorted and deduplicated for you) and normalizes it to unit length, the
// representation the join expects.
func NewVector(dims []uint32, vals []float64) (Vector, error) {
	v, err := vec.New(dims, vals)
	if err != nil {
		return Vector{}, err
	}
	return v.Normalize(), nil
}

// SliceSource returns a Source over an in-memory item slice (the slice
// is not copied), for feeding Join, JoinCtx, or Matches.
func SliceSource(items []Item) Source { return stream.NewSliceSource(items) }

// ReadText returns a Source over the text dataset format:
// "<timestamp> <dim>:<val> ..." per line. Vectors are normalized on read.
func ReadText(r io.Reader) Source { return stream.NewTextReader(r) }

// ReadBinary returns a Source over the binary dataset format produced by
// WriteBinary (see cmd/sssjconvert).
func ReadBinary(r io.Reader) Source { return stream.NewBinaryReader(r) }

// WriteBinary writes items in the binary dataset format.
func WriteBinary(w io.Writer, items []Item) error { return stream.WriteBinary(w, items) }

// WriteText writes items in the text dataset format.
func WriteText(w io.Writer, items []Item) error { return stream.WriteText(w, items) }

// ParamsFromHorizon derives λ from a desired horizon τ per the §3
// methodology: pick θ, pick the gap τ at which identical items stop being
// similar, and set λ = ln(1/θ)/τ.
func ParamsFromHorizon(theta, tau float64) (Params, error) {
	return apss.FromHorizon(theta, tau)
}
