// Package sssj implements streaming similarity self-join: finding, in an
// unbounded stream of timestamped sparse vectors, all pairs whose
// time-dependent cosine similarity
//
//	sim(x, y) = dot(x, y) · exp(-λ·|t(x)−t(y)|)
//
// reaches a threshold θ. It is a from-scratch reproduction of
// "Streaming Similarity Self-Join" (De Francisci Morales & Gionis,
// VLDB 2016), including both of the paper's frameworks — Streaming (STR)
// and MiniBatch (MB) — and all of its indexing schemes (INV, AP, L2AP, and
// the paper's streaming-optimized L2 index).
//
// # Quick start
//
//	j, err := sssj.New(sssj.Options{Theta: 0.7, Lambda: 0.01})
//	if err != nil { ... }
//	for item := range input {
//	    matches, err := j.Process(item)
//	    ...
//	}
//	tail, err := j.Flush()
//
// The default configuration (STR framework, L2 index) is the paper's
// recommended, most scalable combination.
package sssj

import (
	"errors"
	"fmt"
	"io"

	"sssj/internal/apss"
	"sssj/internal/core"
	"sssj/internal/dimorder"
	"sssj/internal/index/static"
	"sssj/internal/index/streaming"
	"sssj/internal/metrics"
	"sssj/internal/stream"
	"sssj/internal/vec"
)

// Re-exported core types. Vector is a sparse vector with sorted
// dimensions; Item is a timestamped vector; Match is a reported similar
// pair; Params bundles (θ, λ); Stats carries operation counters; Source
// yields stream items; Kernel generalizes the decay function.
type (
	Vector = vec.Vector
	Item   = stream.Item
	Match  = apss.Match
	Params = apss.Params
	Stats  = metrics.Counters
	Source = stream.Source
	Kernel = apss.Kernel
)

// Decay kernels (see Kernel). Exponential is the paper's definition and
// the default; the others are extensions.
type (
	Exponential   = apss.Exponential
	SlidingWindow = apss.SlidingWindow
	Polynomial    = apss.Polynomial
)

// Framework selects between the paper's two algorithmic frameworks.
type Framework int

// Frameworks.
const (
	// Streaming (STR, Algorithm 5) maintains one incremental index with
	// time filtering built in and reports matches online. The paper's
	// recommendation.
	Streaming Framework = iota
	// MiniBatch (MB, Algorithm 1) indexes τ-length windows with a batch
	// index used as a black box; matches are reported with up to 2τ
	// delay.
	MiniBatch
)

// String implements fmt.Stringer.
func (f Framework) String() string {
	switch f {
	case Streaming:
		return "STR"
	case MiniBatch:
		return "MB"
	default:
		return fmt.Sprintf("Framework(%d)", int(f))
	}
}

// IndexKind selects an indexing scheme.
type IndexKind int

// Index kinds.
const (
	// IndexL2 is the paper's contribution (§5.4): ℓ2-only bounds, no
	// global statistics, no re-indexing. The recommended default.
	IndexL2 IndexKind = iota
	// IndexINV is the plain inverted index with no residual filtering.
	IndexINV
	// IndexL2AP is the streaming adaptation of Anastasiu & Karypis's
	// L2AP, combining the AP and ℓ2 bounds.
	IndexL2AP
	// IndexAP is Bayardo et al.'s scheme; supported only under MiniBatch
	// (§5.2: its streaming version is not efficient in practice).
	IndexAP
)

// String implements fmt.Stringer.
func (k IndexKind) String() string {
	switch k {
	case IndexL2:
		return "L2"
	case IndexINV:
		return "INV"
	case IndexL2AP:
		return "L2AP"
	case IndexAP:
		return "AP"
	default:
		return fmt.Sprintf("IndexKind(%d)", int(k))
	}
}

// ErrUnsupported reports an invalid framework × index combination.
var ErrUnsupported = errors.New("sssj: unsupported framework/index combination")

// Options configures a Joiner. Theta and Lambda are required; everything
// else defaults to the paper's recommended setup (STR framework, L2
// index, exponential decay).
type Options struct {
	// Theta is the similarity threshold θ in (0, 1].
	Theta float64
	// Lambda is the time-decay factor λ > 0. Together they fix the time
	// horizon τ = ln(1/θ)/λ beyond which pairs can never match.
	Lambda float64
	// Framework selects STR (default) or MB.
	Framework Framework
	// Index selects the indexing scheme (default IndexL2).
	Index IndexKind
	// Kernel overrides exponential decay (extension). Only STR with
	// IndexINV or IndexL2 supports non-exponential kernels.
	Kernel Kernel
	// Stats, when non-nil, receives operation counters.
	Stats *Stats
	// DimOrder enables the dimension-ordering extension (the paper's
	// suggested future work). Under MiniBatch, each window's batch index
	// orders dimensions by the chosen strategy; under Streaming, a
	// permutation is learned from the first WarmupItems items and applied
	// thereafter (matches among warmup items are delayed until the
	// warmup closes). The zero value keeps natural order, as in the
	// paper.
	DimOrder DimOrder
	// Workers selects the sharded parallel Streaming engine: the
	// dimension space is partitioned across Workers shards, each owning
	// the posting lists for its dimensions; Process fans candidate
	// generation out to the shards and verifies the merged candidates
	// concurrently, producing the same match set as the sequential
	// engine. Values ≤ 1 (the default) run the paper's sequential
	// engine. Only the Streaming framework supports Workers > 1;
	// MiniBatch returns ErrUnsupported.
	Workers int
}

// DimOrder configures the dimension-ordering extension.
type DimOrder struct {
	// Strategy ranks dimensions; OrderNone disables the extension.
	Strategy DimStrategy
	// WarmupItems is how many leading stream items the Streaming
	// framework learns the permutation from (ignored by MiniBatch,
	// which learns from each full window). Required > 0 when Strategy
	// is set under Streaming.
	WarmupItems int
}

// DimStrategy ranks dimensions for the ordering extension.
type DimStrategy = dimorder.Strategy

// Ordering strategies.
const (
	// OrderNone keeps natural dimension order (the paper's setting).
	OrderNone = dimorder.None
	// OrderDocFreqAsc puts rare dimensions in the unindexed prefix.
	OrderDocFreqAsc = dimorder.DocFreqAsc
	// OrderMaxValueDesc front-loads large-valued dimensions.
	OrderMaxValueDesc = dimorder.MaxValueDesc
)

// Joiner is a streaming similarity self-join operator. Process and Flush
// must not be called concurrently from multiple goroutines: a stream has
// one arrival order, and the operator advances its clock with each item.
// With Options.Workers > 1 the work *inside* each Process call is
// executed by a pool of dimension-sharded workers while preserving the
// sequential engine's match semantics; with Workers ≤ 1 (the default)
// processing is fully sequential, exactly as in the paper.
type Joiner struct {
	inner  core.Joiner
	params Params
	opts   Options
}

// New builds a Joiner.
func New(opts Options) (*Joiner, error) {
	params := Params{Theta: opts.Theta, Lambda: opts.Lambda}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	var (
		inner core.Joiner
		err   error
	)
	switch opts.Framework {
	case Streaming:
		var kind streaming.Kind
		switch opts.Index {
		case IndexINV:
			kind = streaming.INV
		case IndexL2AP:
			kind = streaming.L2AP
		case IndexL2:
			kind = streaming.L2
		case IndexAP:
			return nil, fmt.Errorf("%w: STR-AP (paper §5.2 omits it as impractical)", ErrUnsupported)
		default:
			return nil, fmt.Errorf("%w: unknown index %v", ErrUnsupported, opts.Index)
		}
		if opts.Workers < 0 {
			return nil, fmt.Errorf("%w: Workers must be >= 0", ErrUnsupported)
		}
		sopts := streaming.Options{Counters: opts.Stats, Kernel: opts.Kernel, Workers: opts.Workers}
		if opts.DimOrder.Strategy != OrderNone {
			if opts.DimOrder.WarmupItems < 1 {
				return nil, fmt.Errorf("%w: Streaming DimOrder needs WarmupItems > 0", ErrUnsupported)
			}
			sopts.Order = streaming.WarmupOrder{
				Strategy: opts.DimOrder.Strategy,
				Items:    opts.DimOrder.WarmupItems,
			}
		}
		inner, err = core.NewSTRFull(kind, params, sopts)
	case MiniBatch:
		if opts.Kernel != nil {
			return nil, fmt.Errorf("%w: MB supports only exponential decay", ErrUnsupported)
		}
		if opts.Workers < 0 {
			return nil, fmt.Errorf("%w: Workers must be >= 0", ErrUnsupported)
		}
		if opts.Workers > 1 {
			return nil, fmt.Errorf("%w: Workers > 1 requires the Streaming framework", ErrUnsupported)
		}
		var kind static.Kind
		switch opts.Index {
		case IndexINV:
			kind = static.INV
		case IndexAP:
			kind = static.AP
		case IndexL2AP:
			kind = static.L2AP
		case IndexL2:
			kind = static.L2
		default:
			return nil, fmt.Errorf("%w: unknown index %v", ErrUnsupported, opts.Index)
		}
		var mbOpts []core.MBOption
		if opts.DimOrder.Strategy != OrderNone {
			mbOpts = append(mbOpts, core.WithOrder(opts.DimOrder.Strategy))
		}
		inner, err = core.NewMiniBatch(kind, params, opts.Stats, mbOpts...)
	default:
		return nil, fmt.Errorf("%w: unknown framework %v", ErrUnsupported, opts.Framework)
	}
	if err != nil {
		return nil, err
	}
	return &Joiner{inner: inner, params: params, opts: opts}, nil
}

// Process feeds the next stream item (timestamps must be non-decreasing)
// and returns the matches reportable so far. Under STR all matches
// involving the new item are returned immediately; under MB matches are
// released at window boundaries.
func (j *Joiner) Process(it Item) ([]Match, error) { return j.inner.Add(it) }

// Flush releases matches still buffered at end of stream (MB only; a
// no-op under STR).
func (j *Joiner) Flush() ([]Match, error) { return j.inner.Flush() }

// Params returns the join parameters.
func (j *Joiner) Params() Params { return j.params }

// IndexSize reports current index occupancy: live posting entries,
// residual vectors, and non-empty posting lists. It is the quantity the
// time-filtering property keeps bounded (§3). ok is false under the
// MiniBatch framework, which buffers windows instead of maintaining one
// index.
type IndexSize = streaming.SizeInfo

// IndexSize implements the accessor described on the IndexSize type.
func (j *Joiner) IndexSize() (IndexSize, bool) {
	s, ok := j.inner.(*core.STR)
	if !ok {
		return IndexSize{}, false
	}
	return s.IndexSize(), true
}

// Horizon returns the time horizon τ = ln(1/θ)/λ.
func (j *Joiner) Horizon() float64 {
	if j.opts.Kernel != nil {
		return j.opts.Kernel.Horizon(j.params.Theta)
	}
	return j.params.Horizon()
}

// Join drains a source through a fresh Joiner and returns all matches.
func Join(opts Options, src Source) ([]Match, error) {
	j, err := New(opts)
	if err != nil {
		return nil, err
	}
	return core.Run(j.inner, src)
}

// SelfJoin runs the join over an in-memory stream.
func SelfJoin(opts Options, items []Item) ([]Match, error) {
	return Join(opts, stream.NewSliceSource(items))
}

// NewVector builds a sparse vector from parallel dimension/value slices
// (sorted and deduplicated for you) and normalizes it to unit length, the
// representation the join expects.
func NewVector(dims []uint32, vals []float64) (Vector, error) {
	v, err := vec.New(dims, vals)
	if err != nil {
		return Vector{}, err
	}
	return v.Normalize(), nil
}

// ReadText returns a Source over the text dataset format:
// "<timestamp> <dim>:<val> ..." per line. Vectors are normalized on read.
func ReadText(r io.Reader) Source { return stream.NewTextReader(r) }

// ReadBinary returns a Source over the binary dataset format produced by
// WriteBinary (see cmd/sssjconvert).
func ReadBinary(r io.Reader) Source { return stream.NewBinaryReader(r) }

// WriteBinary writes items in the binary dataset format.
func WriteBinary(w io.Writer, items []Item) error { return stream.WriteBinary(w, items) }

// WriteText writes items in the text dataset format.
func WriteText(w io.Writer, items []Item) error { return stream.WriteText(w, items) }

// ParamsFromHorizon derives λ from a desired horizon τ per the §3
// methodology: pick θ, pick the gap τ at which identical items stop being
// similar, and set λ = ln(1/θ)/τ.
func ParamsFromHorizon(theta, tau float64) (Params, error) {
	return apss.FromHorizon(theta, tau)
}
