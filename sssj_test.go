package sssj

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sssj/internal/apss"
	"sssj/internal/core"
	"sssj/internal/datagen"
	"sssj/internal/stream"
)

// allOptions enumerates every supported framework × index combination.
func allOptions(theta, lambda float64) []Options {
	var out []Options
	for _, ix := range []IndexKind{IndexINV, IndexL2AP, IndexL2} {
		out = append(out, Options{Theta: theta, Lambda: lambda, Framework: Streaming, Index: ix})
	}
	for _, ix := range []IndexKind{IndexINV, IndexAP, IndexL2AP, IndexL2} {
		out = append(out, Options{Theta: theta, Lambda: lambda, Framework: MiniBatch, Index: ix})
	}
	return out
}

func TestPublicAPIAgainstOracle(t *testing.T) {
	items := datagen.RCV1Profile().Scaled(0.05).Generate(1)
	p := Params{Theta: 0.6, Lambda: 0.05}
	bf, err := core.NewBruteForce(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Run(bf, stream.NewSliceSource(items))
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range allOptions(p.Theta, p.Lambda) {
		got, err := SelfJoin(opts, items)
		if err != nil {
			t.Fatalf("%v-%v: %v", opts.Framework, opts.Index, err)
		}
		if !apss.EqualMatchSets(got, want, 1e-9) {
			t.Fatalf("%v-%v: diverged from oracle (%d vs %d matches)",
				opts.Framework, opts.Index, len(got), len(want))
		}
	}
}

func TestDefaultsAreSTRL2(t *testing.T) {
	j, err := New(Options{Theta: 0.7, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVector([]uint32{1, 2}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Process(Item{ID: 0, Time: 0, Vec: v}); err != nil {
		t.Fatal(err)
	}
	ms, err := j.Process(Item{ID: 1, Time: 0.5, Vec: v})
	if err != nil || len(ms) != 1 {
		t.Fatalf("default joiner missed the pair: %v %v", ms, err)
	}
	if tail, err := j.Flush(); err != nil || len(tail) != 0 {
		t.Fatalf("STR flush should be empty: %v %v", tail, err)
	}
}

func TestUnsupportedCombinations(t *testing.T) {
	cases := []Options{
		{Theta: 0.5, Lambda: 0.1, Framework: Streaming, Index: IndexAP},
		{Theta: 0.5, Lambda: 0.1, Framework: Streaming, Index: IndexKind(99)},
		{Theta: 0.5, Lambda: 0.1, Framework: Framework(9), Index: IndexL2},
		{Theta: 0.5, Lambda: 0.1, Framework: MiniBatch, Index: IndexKind(99)},
		{Theta: 0.5, Lambda: 0.1, Framework: MiniBatch, Index: IndexL2, Kernel: SlidingWindow{Tau: 1}},
		{Theta: 0.5, Lambda: 0.1, Framework: Streaming, Index: IndexL2AP, Kernel: SlidingWindow{Tau: 1}},
	}
	for _, opts := range cases {
		if _, err := New(opts); err == nil {
			t.Fatalf("accepted %+v", opts)
		}
	}
	// ErrUnsupported is wrapped where applicable
	_, err := New(cases[0])
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("want ErrUnsupported, got %v", err)
	}
}

func TestInvalidParams(t *testing.T) {
	for _, opts := range []Options{
		{Theta: 0, Lambda: 0.1},
		{Theta: 1.2, Lambda: 0.1},
		{Theta: 0.5, Lambda: 0},
		{Theta: 0.5, Lambda: -2},
	} {
		if _, err := New(opts); err == nil {
			t.Fatalf("accepted %+v", opts)
		}
	}
}

func TestStatsExposed(t *testing.T) {
	var st Stats
	items := datagen.TweetsProfile().Scaled(0.02).Generate(2)
	_, err := SelfJoin(Options{Theta: 0.6, Lambda: 0.1, Stats: &st}, items)
	if err != nil {
		t.Fatal(err)
	}
	if st.Items != int64(len(items)) || st.EntriesTraversed == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestHorizon(t *testing.T) {
	j, err := New(Options{Theta: 0.5, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if h := j.Horizon(); h < 6.9 || h > 7.0 {
		t.Fatalf("horizon = %v", h)
	}
	jw, err := New(Options{Theta: 0.5, Lambda: 0.1, Kernel: SlidingWindow{Tau: 42}})
	if err != nil {
		t.Fatal(err)
	}
	if jw.Horizon() != 42 {
		t.Fatalf("kernel horizon = %v", jw.Horizon())
	}
	if j.Params().Theta != 0.5 {
		t.Fatal("params accessor wrong")
	}
}

func TestParamsFromHorizon(t *testing.T) {
	p, err := ParamsFromHorizon(0.7, 300)
	if err != nil {
		t.Fatal(err)
	}
	if h := p.Horizon(); h < 299.999 || h > 300.001 {
		t.Fatalf("horizon = %v", h)
	}
}

func TestTextAndBinaryRoundTripThroughPublicAPI(t *testing.T) {
	items := datagen.RCV1Profile().Scaled(0.01).Generate(5)
	var txt, bin bytes.Buffer
	if err := WriteText(&txt, items); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, items); err != nil {
		t.Fatal(err)
	}
	opts := Options{Theta: 0.7, Lambda: 0.05}
	fromMem, err := SelfJoin(opts, items)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := Join(opts, ReadText(&txt))
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := Join(opts, ReadBinary(&bin))
	if err != nil {
		t.Fatal(err)
	}
	if !apss.EqualMatchSets(fromMem, fromBin, 1e-9) {
		t.Fatal("binary round trip changed results")
	}
	if !apss.EqualMatchSets(fromMem, fromTxt, 1e-6) {
		t.Fatal("text round trip changed results")
	}
}

func TestStringers(t *testing.T) {
	if Streaming.String() != "STR" || MiniBatch.String() != "MB" {
		t.Fatal("framework names")
	}
	if IndexL2.String() != "L2" || IndexINV.String() != "INV" ||
		IndexL2AP.String() != "L2AP" || IndexAP.String() != "AP" {
		t.Fatal("index names")
	}
	if Framework(7).String() == "" || IndexKind(7).String() == "" {
		t.Fatal("unknown names empty")
	}
}

func TestMatchFieldsAreConsistent(t *testing.T) {
	items := datagen.BlogsProfile().Scaled(0.03).Generate(4)
	ms, err := SelfJoin(Options{Theta: 0.6, Lambda: 0.05}, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Skip("no matches generated")
	}
	p := Params{Theta: 0.6, Lambda: 0.05}
	for _, m := range ms {
		if m.X <= m.Y {
			t.Fatalf("X should be the later item: %+v", m)
		}
		if m.Sim < p.Theta || m.Sim > m.Dot+1e-12 {
			t.Fatalf("inconsistent sim/dot: %+v", m)
		}
		if want := p.Sim(m.Dot, m.DT); want-m.Sim > 1e-9 || m.Sim-want > 1e-9 {
			t.Fatalf("sim != dot·decay: %+v want %v", m, want)
		}
	}
}

func BenchmarkDefaultJoiner(b *testing.B) {
	items := datagen.RCV1Profile().Scaled(0.25).Generate(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelfJoin(Options{Theta: 0.7, Lambda: 0.1}, items); err != nil {
			b.Fatal(err)
		}
	}
}

func randomItemsForFuzz(seed int64, n int) []Item {
	r := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	tm := 0.0
	for i := range items {
		tm += r.Float64()
		dims := []uint32{uint32(r.Intn(10)), uint32(10 + r.Intn(10))}
		v, _ := NewVector(dims, []float64{r.Float64() + 0.1, r.Float64() + 0.1})
		items[i] = Item{ID: uint64(i), Time: tm, Vec: v}
	}
	return items
}

func TestAllCombinationsAgreeOnFuzzStreams(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		items := randomItemsForFuzz(seed, 60)
		var ref []Match
		for i, opts := range allOptions(0.8, 0.3) {
			got, err := SelfJoin(opts, items)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = got
				continue
			}
			if !apss.EqualMatchSets(got, ref, 1e-9) {
				t.Fatalf("seed %d: %v-%v disagrees", seed, opts.Framework, opts.Index)
			}
		}
	}
}

func TestTopKPublicAPI(t *testing.T) {
	tk, err := NewTopK(Options{Theta: 0.5, Lambda: 0.1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := NewVector([]uint32{1, 2}, []float64{1, 1})
	u, _ := NewVector([]uint32{1, 2}, []float64{1, 1.1})
	for i, tm := range []float64{0, 1, 2} {
		vec := v
		if i == 1 {
			vec = u
		}
		if _, err := tk.Process(Item{ID: uint64(i), Time: tm, Vec: vec}); err != nil {
			t.Fatal(err)
		}
	}
	ns, err := tk.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 {
		t.Fatalf("finalized %d items", len(ns))
	}
	for _, n := range ns {
		if len(n.Matches) == 0 || len(n.Matches) > 2 {
			t.Fatalf("item %d: %d neighbors", n.ID, len(n.Matches))
		}
	}
	if tk.Open() != 0 {
		t.Fatalf("open = %d after flush", tk.Open())
	}
	// MB framework rejected
	if _, err := NewTopK(Options{Theta: 0.5, Lambda: 0.1, Framework: MiniBatch}, 2); err == nil {
		t.Fatal("top-k accepted MiniBatch")
	}
	// invalid params propagate
	if _, err := NewTopK(Options{Theta: 0, Lambda: 0.1}, 2); err == nil {
		t.Fatal("top-k accepted bad params")
	}
}

func TestIndexSizeAccessor(t *testing.T) {
	j, err := New(Options{Theta: 0.5, Lambda: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := NewVector([]uint32{1, 2}, []float64{1, 1})
	if _, err := j.Process(Item{ID: 0, Time: 0, Vec: v}); err != nil {
		t.Fatal(err)
	}
	sz, ok := j.IndexSize()
	if !ok || sz.PostingEntries == 0 {
		t.Fatalf("size = %+v ok=%v", sz, ok)
	}
	mb, err := New(Options{Theta: 0.5, Lambda: 0.1, Framework: MiniBatch})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mb.IndexSize(); ok {
		t.Fatal("MiniBatch reported an index size")
	}
}
