package sssj

import (
	"fmt"

	"sssj/internal/core"
)

// Neighbors is one item's finalized top-k neighborhood: its k most
// similar in-horizon stream items, sorted by decreasing time-dependent
// similarity. Matches are reported from the item's perspective (X is the
// item itself).
type Neighbors = core.Neighbors

// TopKJoiner turns the threshold join into a bounded-neighborhood join:
// for every stream item, its k most similar items within the time
// horizon. This is the operator the paper's recommender-system use case
// (low θ, §7.1) builds on.
//
// An item's neighborhood is final once the stream has advanced τ past its
// arrival, so results trail the stream by one horizon; Flush drains the
// rest at end of stream.
type TopKJoiner struct {
	inner *core.TopK
}

// NewTopK builds a top-k joiner. opts must use the Streaming framework
// (MiniBatch's reporting delay is incompatible with neighborhood
// finalization); k is the neighborhood size.
func NewTopK(opts Options, k int) (*TopKJoiner, error) {
	if opts.Framework != Streaming {
		return nil, fmt.Errorf("%w: top-k requires the Streaming framework", ErrUnsupported)
	}
	j, err := New(opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewTopK(j.inner, k, j.Horizon())
	if err != nil {
		return nil, err
	}
	return &TopKJoiner{inner: inner}, nil
}

// Process feeds the next item and returns the neighborhoods that became
// final.
func (t *TopKJoiner) Process(it Item) ([]Neighbors, error) { return t.inner.Add(it) }

// Flush finalizes all pending neighborhoods at end of stream.
func (t *TopKJoiner) Flush() ([]Neighbors, error) { return t.inner.Flush() }

// Open reports how many items await finalization.
func (t *TopKJoiner) Open() int { return t.inner.Open() }
