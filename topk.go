package sssj

import (
	"sssj/internal/core"
)

// Neighbors is one item's finalized top-k neighborhood: its k most
// similar in-horizon stream items, sorted by decreasing time-dependent
// similarity. Matches are reported from the item's perspective (X is the
// item itself).
type Neighbors = core.Neighbors

// NeighborsSink consumes finalized neighborhoods as the stream advances
// past their horizon — the push counterpart of a returned []Neighbors.
type NeighborsSink = func(Neighbors) error

// TopKJoiner turns the threshold join into a bounded-neighborhood join:
// for every stream item, its k most similar items within the time
// horizon. This is the operator the paper's recommender-system use case
// (low θ, §7.1) builds on.
//
// An item's neighborhood is final once the stream has advanced τ past its
// arrival, so results trail the stream by one horizon; Flush drains the
// rest at end of stream.
type TopKJoiner struct {
	inner *core.TopK
}

// NewTopK builds a top-k joiner. opts must use the Streaming framework
// (MiniBatch's reporting delay is incompatible with neighborhood
// finalization); k is the neighborhood size and is shorthand for
// Options.K — pass k = 0 to use opts.K directly.
func NewTopK(opts Options, k int) (*TopKJoiner, error) {
	if k != 0 {
		opts.K = k
	}
	params := Params{Theta: opts.Theta, Lambda: opts.Lambda}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if err := opts.validate(opTopK); err != nil {
		return nil, err
	}
	j, err := buildJoiner(opts, params)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewTopK(j, opts.K, horizonFor(opts, params))
	if err != nil {
		return nil, err
	}
	return &TopKJoiner{inner: inner}, nil
}

// Process feeds the next item and returns the neighborhoods that became
// final. It is the collect adapter over ProcessTo. Timestamps follow
// the Joiner contract: a regressing item is rejected with
// ErrTimeRegression.
func (t *TopKJoiner) Process(it Item) ([]Neighbors, error) {
	ns, err := t.inner.Add(it)
	return ns, wrapTimeErr(err)
}

// ProcessTo feeds the next item, pushing each neighborhood into sink
// the moment it finalizes. Matches flow from the underlying join
// straight into the open neighborhoods with no intermediate slice.
func (t *TopKJoiner) ProcessTo(it Item, sink NeighborsSink) error {
	return wrapTimeErr(t.inner.AddTo(it, core.NeighborsSink(sink)))
}

// Flush finalizes all pending neighborhoods at end of stream. It is the
// collect adapter over FlushTo.
func (t *TopKJoiner) Flush() ([]Neighbors, error) {
	ns, err := t.inner.Flush()
	return ns, wrapTimeErr(err)
}

// FlushTo finalizes all pending neighborhoods into sink.
func (t *TopKJoiner) FlushTo(sink NeighborsSink) error {
	return wrapTimeErr(t.inner.FlushTo(core.NeighborsSink(sink)))
}

// Open reports how many items await finalization.
func (t *TopKJoiner) Open() int { return t.inner.Open() }
