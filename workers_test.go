package sssj_test

import (
	"fmt"
	"testing"

	"sssj"
	"sssj/internal/apss"
	"sssj/internal/datagen"
)

// TestWorkersParityOnDatagen: on every synthetic dataset profile, the
// sharded parallel engine (Workers ≥ 2) must emit the same match set as
// the sequential engine for each streaming index scheme.
func TestWorkersParityOnDatagen(t *testing.T) {
	indexes := []sssj.IndexKind{sssj.IndexL2, sssj.IndexL2AP, sssj.IndexINV}
	for _, prof := range datagen.Profiles() {
		items := prof.Scaled(0.03).Generate(42)
		for _, ix := range indexes {
			base := sssj.Options{Theta: 0.6, Lambda: 0.01, Index: ix}
			want, err := sssj.SelfJoin(base, items)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/%v/w=%d", prof.Name, ix, workers), func(t *testing.T) {
					opts := base
					opts.Workers = workers
					got, err := sssj.SelfJoin(opts, items)
					if err != nil {
						t.Fatal(err)
					}
					if !apss.EqualMatchSets(got, want, 1e-9) {
						t.Fatalf("match sets diverge: %d (workers=%d) vs %d (sequential)",
							len(got), workers, len(want))
					}
				})
			}
		}
	}
}

// TestWorkersOptionValidation: Workers is a Streaming-framework feature;
// MiniBatch and negative values are rejected.
func TestWorkersOptionValidation(t *testing.T) {
	if _, err := sssj.New(sssj.Options{Theta: 0.7, Lambda: 0.01, Framework: sssj.MiniBatch, Workers: 2}); err == nil {
		t.Fatal("MiniBatch with Workers > 1 accepted")
	}
	if _, err := sssj.New(sssj.Options{Theta: 0.7, Lambda: 0.01, Workers: -2}); err == nil {
		t.Fatal("negative Workers accepted")
	}
	// Workers composes with the dimension-ordering extension.
	j, err := sssj.New(sssj.Options{
		Theta: 0.7, Lambda: 0.01, Workers: 2,
		DimOrder: sssj.DimOrder{Strategy: sssj.OrderDocFreqAsc, WarmupItems: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j.IndexSize(); !ok {
		t.Fatal("parallel STR joiner should expose IndexSize")
	}
}
